//! Seeded chaos harness for the dynamic-batching [`Dispatcher`].
//!
//! Random interleavings of submissions, cancellations, and deadlines —
//! over a fault-injected [`BootstrapEngine`] backend — must uphold the
//! serving contract:
//!
//! - **no request is lost**: every ticket resolves (success, cancelled,
//!   expired, or failed) and the counters account for every submission;
//! - **no request is corrupted or reordered**: every success is
//!   bit-identical to the sequential [`ServerKey`] reference for *that*
//!   request;
//! - **backpressure is loud**: a full queue surfaces as
//!   [`TfheError::QueueFull`] on `try_submit`, never a silent drop;
//! - **degraded mode is lossless**: with a killed primary behind a
//!   [`FailoverBootstrapper`], every request is still served bit-identically
//!   by a fallback tier, and the breaker/journal counters agree;
//! - **breaker transitions lose nothing**: across open → half-open →
//!   close cycles no ticket is lost or resolved twice.
//!
//! All seeds are fixed, so CI failures replay locally. The resilience
//! tests also honor `MORPHLING_CHAOS_SEED` so CI can sweep several seeds.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use morphling_tfhe::{
    BatchRequest, BootstrapEngine, Bootstrapper, BreakerState, CircuitBreaker, ClientKey,
    Dispatcher, FailoverBootstrapper, FaultPlan, Lut, LweCiphertext, ParamSet, ResilienceJournal,
    RetryPolicy, ServerKey, TfheError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base seed, overridable via `MORPHLING_CHAOS_SEED` (CI sweeps 1..=3).
/// The override is mixed with the per-test default so two tests never
/// collapse onto the same stream.
fn chaos_seed(default: u64) -> u64 {
    std::env::var("MORPHLING_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|s| s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ default)
        .unwrap_or(default)
}

fn setup(seed: u64) -> (ClientKey, Arc<ServerKey>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
    let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
    (ck, sk, rng)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Normal,
    Cancelled,
    PastDeadline,
}

/// Random submit / cancel / deadline interleavings over a worker pool
/// that panics 15% of the time (and self-heals). Every ticket must
/// resolve, successes must be bit-identical to the sequential reference,
/// and the dispatcher counters must add up to exactly the submissions.
#[test]
fn dispatch_chaos_accounts_for_every_request() {
    let (ck, sk, mut rng) = setup(0xD15A);
    let poly = sk.params().poly_size;
    let lut = Arc::new(Lut::from_fn(poly, 4, |m| (m + 1) % 4));

    let engine = BootstrapEngine::builder()
        .workers(2)
        .chunk_size(2)
        .respawn_budget(256)
        .max_retries(8)
        .retry_backoff(Duration::from_micros(100))
        .fault_plan(FaultPlan::seeded(0xFA57).with_worker_panic(0.15))
        .build(Arc::clone(&sk))
        .expect("spawn pool");

    let dispatcher = Dispatcher::builder()
        .max_batch_size(4)
        .max_linger(Duration::from_millis(2))
        .queue_capacity(64)
        .build(engine);

    let total = 40usize;
    let mut tickets = Vec::with_capacity(total);
    for i in 0..total {
        let m = i as u64 % 4;
        let ct = ck.encrypt(m, &mut rng);
        let expected = sk.programmable_bootstrap(&ct, &lut);
        let kind = match rng.gen_range(0..10u32) {
            0 => Kind::Cancelled,
            1 => Kind::PastDeadline,
            _ => Kind::Normal,
        };
        let deadline = match kind {
            // Already in the past: must expire, never execute late.
            Kind::PastDeadline => Some(Instant::now() - Duration::from_millis(5)),
            _ => None,
        };
        let ticket = dispatcher
            .submit(ct, Arc::clone(&lut), deadline)
            .expect("queue has room for the whole run");
        if kind == Kind::Cancelled {
            ticket.cancel();
        }
        tickets.push((kind, expected, ticket));
        // Occasionally pause so batches form at varied sizes.
        if rng.gen_range(0..4u32) == 0 {
            std::thread::sleep(Duration::from_micros(rng.gen_range(0..400)));
        }
    }

    let mut completed = 0u64;
    let mut cancelled = 0u64;
    let mut expired = 0u64;
    let mut failed = 0u64;
    for (kind, expected, ticket) in tickets {
        match ticket.wait() {
            Ok(out) => {
                assert_eq!(
                    out, expected,
                    "a served request must be bit-identical to the reference"
                );
                assert_ne!(kind, Kind::PastDeadline, "expired work must not run");
                completed += 1;
            }
            Err(TfheError::Cancelled) => {
                assert_eq!(kind, Kind::Cancelled, "only cancelled requests may say so");
                cancelled += 1;
            }
            Err(TfheError::DeadlineExceeded) => {
                assert_eq!(kind, Kind::PastDeadline, "only stale requests may expire");
                expired += 1;
            }
            Err(e) => {
                // The fault-injected backend may exhaust retries; that is
                // a loud failure, which the contract permits — losing the
                // request silently is what it forbids.
                assert_eq!(kind, Kind::Normal, "unexpected error {e} for {kind:?}");
                failed += 1;
            }
        }
    }

    let stats = dispatcher.stats();
    assert_eq!(stats.submitted, total as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(
        stats.completed + stats.cancelled + stats.expired + stats.failed,
        stats.submitted,
        "every submission must be accounted for: {stats:?}"
    );
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.cancelled, cancelled);
    assert_eq!(stats.expired, expired);
    assert_eq!(stats.failed, failed);
    assert!(stats.batches > 0);
    assert!(stats.mean_batch_size >= 1.0);
    // The journal covers exactly the requests that reached a batch.
    assert_eq!(dispatcher.spans().len() as u64, stats.batched);
}

/// A backend that blocks on a gate: lets the test wedge the batcher
/// deterministically and fill the queue to the brim.
struct GatedBackend {
    inner: Arc<ServerKey>,
    gate: Mutex<mpsc::Receiver<()>>,
}

impl Bootstrapper for GatedBackend {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.recv().map_err(|_| TfheError::EngineShutDown)?;
        self.inner.try_bootstrap_batch(req)
    }
}

/// Fill the bounded queue while the batcher is wedged in the backend:
/// `try_submit` must report [`TfheError::QueueFull`] with the configured
/// capacity, and once the gate opens every accepted request must still
/// complete bit-identically.
#[test]
fn dispatch_chaos_backpressure_is_loud_and_lossless() {
    let (ck, sk, mut rng) = setup(0xB10C);
    let poly = sk.params().poly_size;
    let lut = Arc::new(Lut::identity(poly, 4));
    let (open, gate) = mpsc::channel();
    let backend = GatedBackend {
        inner: Arc::clone(&sk),
        gate: Mutex::new(gate),
    };

    let capacity = 3usize;
    let dispatcher = Dispatcher::builder()
        .max_batch_size(1)
        .max_linger(Duration::ZERO)
        .queue_capacity(capacity)
        .build(backend);

    // First request is popped by the batcher and wedges in the backend.
    let first_ct = ck.encrypt(1, &mut rng);
    let first_expected = sk.programmable_bootstrap(&first_ct, &lut);
    let first = dispatcher
        .submit(first_ct, Arc::clone(&lut), None)
        .expect("first submit");
    // Wait until the batcher has actually taken it out of the queue.
    let deadline = Instant::now() + Duration::from_secs(5);
    while dispatcher.spans().is_empty() && first.try_wait().is_none() {
        assert!(Instant::now() < deadline, "batcher never picked up work");
        if dispatcher.stats().batches > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // Now fill the queue to capacity behind the wedged batch...
    let mut queued = Vec::new();
    for m in 0..capacity as u64 {
        let ct = ck.encrypt(m % 4, &mut rng);
        let expected = sk.programmable_bootstrap(&ct, &lut);
        let t = loop {
            match dispatcher.try_submit(ct.clone(), Arc::clone(&lut), None) {
                Ok(t) => break t,
                // The batcher may still be between queue and gate; retry.
                Err(TfheError::QueueFull { .. }) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        };
        queued.push((expected, t));
        if queued.len() == capacity {
            break;
        }
    }

    // ...and the next try_submit must refuse, loudly, with the capacity.
    let overflow = dispatcher.try_submit(ck.encrypt(0, &mut rng), Arc::clone(&lut), None);
    assert_eq!(
        overflow.err(),
        Some(TfheError::QueueFull { capacity }),
        "a full queue must backpressure"
    );

    // Open the gate for every wedged + queued batch and drain.
    for _ in 0..(capacity + 2) {
        let _ = open.send(());
    }
    assert_eq!(
        first.wait().expect("first request completes"),
        first_expected
    );
    for (expected, t) in queued {
        assert_eq!(t.wait().expect("queued request completes"), expected);
    }
    let stats = dispatcher.stats();
    assert_eq!(stats.rejected, 1, "exactly one overflow was refused");
    assert_eq!(stats.completed, capacity as u64 + 1);
}

/// Shutdown while requests are still queued: drain semantics — everything
/// already accepted completes; nothing hangs.
#[test]
fn dispatch_chaos_shutdown_drains_without_loss() {
    let (ck, sk, mut rng) = setup(0xD0E5);
    let poly = sk.params().poly_size;
    let lut = Arc::new(Lut::identity(poly, 4));
    let mut dispatcher = Dispatcher::builder()
        .max_batch_size(8)
        .max_linger(Duration::from_millis(50))
        .build(Arc::clone(&sk));

    let tickets: Vec<_> = (0..6u64)
        .map(|m| {
            let ct = ck.encrypt(m % 4, &mut rng);
            let expected = sk.programmable_bootstrap(&ct, &lut);
            let t = dispatcher
                .submit(ct, Arc::clone(&lut), None)
                .expect("submit");
            (expected, t)
        })
        .collect();
    dispatcher.shutdown();
    for (expected, t) in tickets {
        assert_eq!(t.wait().expect("drained on shutdown"), expected);
    }
    // Post-shutdown submissions are refused, not hung.
    assert_eq!(
        dispatcher.submit(ck.encrypt(0, &mut rng), lut, None).err(),
        Some(TfheError::DispatcherShutDown)
    );
}

/// Killed primary behind a failover stack: workers panic or wedge on
/// every job and never respawn, the primary breaker opens (helped by its
/// `EngineHealthHandle` probe reading `Failed`), and the sequential
/// fallback serves **every** request bit-identically — zero loss, with
/// the stats counters matching the resilience journal event for event.
#[test]
fn dispatch_chaos_killed_primary_fails_over_with_zero_loss() {
    let seed = chaos_seed(0x0FA1_10E4);
    let (ck, sk, mut rng) = setup(seed ^ 0x00D5);
    let poly = sk.params().poly_size;
    let lut = Arc::new(Lut::from_fn(poly, 4, |m| (m + 1) % 4));

    let journal = Arc::new(ResilienceJournal::new());
    // Primary: one worker, no respawn budget, every job either panics or
    // wedges past the watchdog — dead on first contact.
    let engine = BootstrapEngine::builder()
        .workers(1)
        .respawn_budget(0)
        .max_retries(0)
        .job_timeout(Duration::from_millis(50))
        // Panic rate 1.0: every job that survives its wedge site still
        // panics, so the primary never serves — only the *mix* of
        // JobTimedOut vs WorkerPanicked varies with the seed.
        .fault_plan(
            FaultPlan::seeded(seed)
                .with_worker_panic(1.0)
                .with_wedged_job(0.5, Duration::from_millis(150)),
        )
        .build(Arc::clone(&sk))
        .expect("spawn pool");
    let health = engine.health_handle();
    let primary_breaker = Arc::new(
        CircuitBreaker::builder()
            .name("engine")
            .min_samples(2)
            .failure_threshold(0.5)
            // Long cooldown: once open, the primary stays benched for the
            // rest of the run — this test is about the fallback path.
            .cooldown(Duration::from_secs(60))
            .health_probe(move || health.health())
            .journal(Arc::clone(&journal))
            .build(),
    );
    let stack = Arc::new(
        FailoverBootstrapper::builder()
            .tier_with_breaker("engine", engine, Arc::clone(&primary_breaker))
            .tier("server", Arc::clone(&sk))
            .retry_policy(
                RetryPolicy::new(1)
                    .with_base_backoff(Duration::from_micros(50))
                    .with_jitter(0.5, seed),
            )
            .journal(Arc::clone(&journal))
            .build()
            .expect("two tiers"),
    );

    let dispatcher = Dispatcher::builder()
        .max_batch_size(4)
        .max_linger(Duration::from_millis(1))
        .resilience_journal(Arc::clone(&journal))
        .build(Arc::clone(&stack));

    let total = 24u64;
    let mut tickets = Vec::with_capacity(total as usize);
    for i in 0..total {
        let ct = ck.encrypt(i % 4, &mut rng);
        let expected = sk.programmable_bootstrap(&ct, &lut);
        let t = dispatcher
            .submit(ct, Arc::clone(&lut), None)
            .expect("admission stays open: failover absorbs the outage");
        tickets.push((expected, t));
        if rng.gen_range(0..3u32) == 0 {
            std::thread::sleep(Duration::from_micros(rng.gen_range(0..300)));
        }
    }

    for (i, (expected, t)) in tickets.into_iter().enumerate() {
        let got = t
            .wait()
            .unwrap_or_else(|e| panic!("request {i} was lost to the outage: {e}"));
        assert_eq!(
            got, expected,
            "request {i} must be bit-identical to the healthy reference"
        );
    }

    let stats = dispatcher.stats();
    assert_eq!(stats.completed, total, "zero lost requests");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.shed, 0, "the dispatcher itself never sheds");
    // The killed primary tripped its breaker and stayed benched...
    assert!(primary_breaker.opens() >= 1, "breaker must open");
    assert_eq!(primary_breaker.state(), BreakerState::Open);
    assert!(stack.failovers() >= 1, "traffic must fail over");
    // ...and only the fallback actually served batches.
    let served = stack.served();
    assert_eq!(served[0].0, "engine");
    assert_eq!(served[0].1, 0, "the dead primary served nothing");
    assert!(served[1].1 >= 1, "the fallback carried the load");

    // Counters must match the journal, event for event.
    let events = journal.events();
    let count = |label: &str| events.iter().filter(|e| e.kind.label() == label).count() as u64;
    assert_eq!(stack.failovers(), count("failover"));
    assert_eq!(stack.retries() + stats.retries, count("retry"));
    assert_eq!(stats.shed, count("shed"));
    assert_eq!(
        primary_breaker.opens() + stack.breaker(1).expect("fallback tier").opens(),
        count("breaker_open")
    );
    assert!(count("breaker_open") >= 1);
}

/// A backend that fails its first `fail_first` calls with a retryable
/// fault, then heals and delegates to the sequential reference.
struct SickThenHealed {
    inner: Arc<ServerKey>,
    fail_first: u64,
    calls: AtomicU64,
}

impl Bootstrapper for SickThenHealed {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_first {
            return Err(TfheError::WorkerPanicked { worker: 99 });
        }
        self.inner.try_bootstrap_batch(req)
    }
}

/// Full breaker life-cycle under load: a sick backend trips the
/// dispatcher's breaker open, shed submissions fail fast with
/// [`TfheError::Overloaded`], half-open probes are admitted after the
/// cooldown, and once the backend heals the breaker closes again. Across
/// all of it: every admitted ticket resolves exactly once, ticket ids are
/// unique, and the counters reconcile with the journal.
#[test]
fn dispatch_chaos_breaker_cycle_loses_no_tickets() {
    let seed = chaos_seed(0xC1BC);
    let (ck, sk, mut rng) = setup(seed ^ 0xBEEF);
    let poly = sk.params().poly_size;
    let lut = Arc::new(Lut::identity(poly, 4));

    let journal = Arc::new(ResilienceJournal::new());
    let cooldown = Duration::from_millis(20);
    let breaker = Arc::new(
        CircuitBreaker::builder()
            .name("serving")
            .window(8)
            .min_samples(2)
            .failure_threshold(0.5)
            .cooldown(cooldown)
            .journal(Arc::clone(&journal))
            .build(),
    );
    // 2..=4 failing calls: enough to trip the breaker, and (for seeds
    // where it exceeds 2) enough that the first half-open probe fails and
    // re-opens it, exercising the reopen edge too.
    let fail_first = 2 + seed % 3;
    let dispatcher = Dispatcher::builder()
        .max_batch_size(1) // one backend call per request: exact accounting
        .max_linger(Duration::ZERO)
        .circuit_breaker(Arc::clone(&breaker))
        .resilience_journal(Arc::clone(&journal))
        .build(SickThenHealed {
            inner: Arc::clone(&sk),
            fail_first,
            calls: AtomicU64::new(0),
        });

    let mut ids = HashSet::new();
    let mut shed = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    for i in 0..40u64 {
        let ct = ck.encrypt(i % 4, &mut rng);
        let expected = sk.programmable_bootstrap(&ct, &lut);
        match dispatcher.submit(ct, Arc::clone(&lut), None) {
            Ok(t) => {
                assert!(ids.insert(t.id()), "ticket ids must be unique");
                // Resolve immediately: exactly-once, success or loud fault.
                match t.wait() {
                    Ok(out) => {
                        assert_eq!(out, expected, "served requests stay bit-identical");
                        completed += 1;
                    }
                    Err(TfheError::WorkerPanicked { worker: 99 }) => failed += 1,
                    Err(e) => panic!("unexpected resolution for request {i}: {e}"),
                }
            }
            Err(TfheError::Overloaded { .. }) => {
                // Shed fast-fail: no ticket was minted, nothing to lose.
                shed += 1;
                std::thread::sleep(cooldown / 4);
            }
            Err(e) => panic!("unexpected admission error for request {i}: {e}"),
        }
        if rng.gen_range(0..4u32) == 0 {
            std::thread::sleep(Duration::from_micros(rng.gen_range(0..200)));
        }
    }

    // Drive the cycle to completion: after the cooldown, half-open probes
    // are admitted; the backend has healed, so a probe must eventually
    // close the breaker.
    let deadline = Instant::now() + Duration::from_secs(10);
    while breaker.state() != BreakerState::Closed {
        assert!(
            Instant::now() < deadline,
            "breaker never closed: {:?}",
            breaker.state()
        );
        let ct = ck.encrypt(1, &mut rng);
        let expected = sk.programmable_bootstrap(&ct, &lut);
        match dispatcher.submit(ct, Arc::clone(&lut), None) {
            Ok(t) => {
                assert!(ids.insert(t.id()), "probe ticket ids must be unique");
                match t.wait() {
                    Ok(out) => {
                        assert_eq!(out, expected);
                        completed += 1;
                    }
                    Err(TfheError::WorkerPanicked { worker: 99 }) => failed += 1,
                    Err(e) => panic!("unexpected probe resolution: {e}"),
                }
            }
            Err(TfheError::Overloaded { .. }) => {
                shed += 1;
                std::thread::sleep(cooldown / 2);
            }
            Err(e) => panic!("unexpected probe admission error: {e}"),
        }
    }

    let stats = dispatcher.stats();
    // Exactly-once accounting: every minted ticket resolved exactly once,
    // sheds never minted a ticket.
    assert_eq!(stats.submitted, ids.len() as u64);
    assert_eq!(stats.completed + stats.failed, stats.submitted);
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.failed, failed);
    assert_eq!(stats.shed, shed);
    assert!(shed >= 1, "an open breaker must shed at least once");
    // The breaker went through the full cycle and the journal agrees.
    assert!(breaker.opens() >= 1);
    assert!(breaker.closes() >= 1);
    assert_eq!(breaker.state(), BreakerState::Closed);
    let events = journal.events();
    let count = |label: &str| events.iter().filter(|e| e.kind.label() == label).count() as u64;
    assert_eq!(count("breaker_open"), breaker.opens());
    assert_eq!(count("breaker_close"), breaker.closes());
    assert_eq!(count("shed"), stats.shed);
    assert!(count("breaker_half_open") >= 1, "probes must be journaled");
}
