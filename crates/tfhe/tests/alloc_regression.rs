//! Allocation regression: the steady-state workspace blind rotation must
//! never touch the heap — the software guarantee matching the paper's
//! design point of keeping ACC, the digit stream, and POLY-ACC-REG
//! resident in on-chip buffers for the entire bootstrap.
//!
//! This file installs a counting global allocator, so it must stay a
//! single-test binary: any concurrent test in the same process would
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use morphling_math::{Polynomial, Torus32, TorusScalar};
use morphling_tfhe::{
    blind_rotate_assign, BootstrapKey, ClientKey, ExternalProductEngine, ParamSet,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every allocation and reallocation in the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_workspace_blind_rotation_is_allocation_free() {
    let params = ParamSet::Test.params();
    let mut rng = StdRng::seed_from_u64(90);
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let bsk = BootstrapKey::generate(&ck, &mut rng);
    let engine = ExternalProductEngine::new(&params);
    let tp = Polynomial::from_fn(params.poly_size, |j| Torus32::encode((j % 4) as u64, 8));
    let mask: Vec<u64> = (1..=params.lwe_dim as u64)
        .map(|i| (i * 37) % params.two_n())
        .collect();

    let mut acc = morphling_tfhe::GlweCiphertext::trivial(tp, params.glwe_dim);
    let mut ws = engine.workspace(params.glwe_dim);

    // One warm-up rotation grows the FFT scratch to its steady-state
    // capacity; nothing after it may allocate.
    blind_rotate_assign(&engine, &bsk, &mut acc, &mask, &mut ws);

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..3 {
        blind_rotate_assign(&engine, &bsk, &mut acc, &mask, &mut ws);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state blind rotation allocated {} time(s)",
        after - before
    );

    // The accumulator still decrypts to *something* sane (phases on the
    // torus): the zero-allocation loop did real work, not a no-op.
    let phase = ck.glwe_key().phase(&acc);
    assert_eq!(phase.len(), params.poly_size);
    let _ = phase[0].to_f64_signed();
}
