//! Integration tests: the full TFHE pipeline at realistic (paper)
//! parameter sets.

use morphling_math::{Torus32, TorusScalar};
use morphling_tfhe::{noise, ClientKey, Lut, MulBackend, ParamSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Set I (the paper's 80-bit benchmark set, N=1024, n=500): gate
/// bootstrapping works end to end.
#[test]
fn set_i_gate_bootstrapping() {
    let mut rng = StdRng::seed_from_u64(1000);
    let ck = ClientKey::generate(ParamSet::I.params(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let a = ck.encrypt_bool(true, &mut rng);
    let b = ck.encrypt_bool(true, &mut rng);
    assert!(!ck.decrypt_bool(&sk.nand(&a, &b)));
    assert!(ck.decrypt_bool(&sk.or(&a, &b)));
}

/// Set I programmable bootstrap with a nontrivial LUT on Z_4.
#[test]
fn set_i_programmable_bootstrap() {
    let mut rng = StdRng::seed_from_u64(1001);
    let params = ParamSet::I.params();
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let lut = Lut::from_fn(params.poly_size, 4, |m| (m * m) % 4);
    for m in 0..4 {
        let ct = ck.encrypt(m, &mut rng);
        assert_eq!(
            ck.decrypt(&sk.programmable_bootstrap(&ct, &lut)),
            (m * m) % 4,
            "m={m}"
        );
    }
}

/// TestMedium (k = 2, the dimension regime where transform-domain reuse
/// matters most): full pipeline with p = 8.
#[test]
fn k2_pipeline_with_p8() {
    let mut rng = StdRng::seed_from_u64(1002);
    let params = ParamSet::TestMedium.params();
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let lut = Lut::from_fn(params.poly_size, 8, |m| (7 - m) % 8);
    for m in 0..8 {
        let ct = ck.encrypt(m, &mut rng);
        assert_eq!(
            ck.decrypt(&sk.programmable_bootstrap(&ct, &lut)),
            (7 - m) % 8,
            "m={m}"
        );
    }
}

/// Noise must stay bounded across a long chain of bootstraps (the whole
/// point of bootstrapping): 10 chained identity bootstraps with additions
/// in between.
#[test]
fn noise_stays_bounded_across_a_chain() {
    let mut rng = StdRng::seed_from_u64(1003);
    let params = ParamSet::Test.params();
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let zero = ck.encrypt(0, &mut rng);
    let mut ct = ck.encrypt(3, &mut rng);
    for hop in 0..10 {
        ct = ct.add(&zero); // leveled op grows noise a little
        ct = sk.bootstrap(&ct); // bootstrap resets it
        assert_eq!(ck.decrypt(&ct), 3, "hop={hop}");
        let err = noise::measured_error(&ck, &ct, Torus32::encode(3, 8)).abs();
        assert!(err < noise::decryption_margin(4), "hop={hop} err={err}");
    }
}

/// The exact (integer oracle) backend and the FFT backend produce
/// ciphertexts that decode identically through a full PBS.
#[test]
fn exact_and_fft_backends_decode_identically() {
    let params = ParamSet::Test.params();
    let lut = Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4);
    for backend in [
        MulBackend::Fft,
        MulBackend::FftPlain,
        MulBackend::Ntt,
        MulBackend::Exact,
    ] {
        let mut rng = StdRng::seed_from_u64(1004);
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::with_backend(&ck, backend, &mut rng);
        for m in 0..4 {
            let ct = ck.encrypt(m, &mut rng);
            assert_eq!(
                ck.decrypt(&sk.programmable_bootstrap(&ct, &lut)),
                (m + 1) % 4,
                "backend={backend:?} m={m}"
            );
        }
    }
}

/// The extracted (pre-key-switch) ciphertext decrypts under the extracted
/// key — i.e. sample extraction and key switching compose correctly.
#[test]
fn pbs_without_ks_is_under_the_extracted_key() {
    let mut rng = StdRng::seed_from_u64(1005);
    let params = ParamSet::Test.params();
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let lut = Lut::identity(params.poly_size, 4);
    let ct = ck.encrypt(2, &mut rng);
    let extracted = sk.programmable_bootstrap_no_ks(&ct, &lut);
    assert_eq!(extracted.dim(), params.extracted_lwe_dim());
    assert_eq!(ck.decrypt_extracted(&extracted), 2);
}

/// An encrypted 4-bit ripple-carry adder built purely from bootstrapped
/// gates — a realistic "many dependent gates" workload.
#[test]
fn four_bit_ripple_carry_adder() {
    let mut rng = StdRng::seed_from_u64(1006);
    let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);

    let add = |x: u32, y: u32, rng: &mut StdRng| -> u32 {
        let xe: Vec<_> = (0..4)
            .map(|i| ck.encrypt_bool(x >> i & 1 == 1, rng))
            .collect();
        let ye: Vec<_> = (0..4)
            .map(|i| ck.encrypt_bool(y >> i & 1 == 1, rng))
            .collect();
        let mut carry = ck.encrypt_bool(false, rng);
        let mut out = 0u32;
        for i in 0..4 {
            let s = sk.xor(&sk.xor(&xe[i], &ye[i]), &carry);
            let c = sk.or(
                &sk.and(&xe[i], &ye[i]),
                &sk.and(&carry, &sk.xor(&xe[i], &ye[i])),
            );
            carry = c;
            if ck.decrypt_bool(&s) {
                out |= 1 << i;
            }
        }
        out
    };

    for (x, y) in [(3u32, 5u32), (7, 9), (15, 1), (6, 6)] {
        assert_eq!(add(x, y, &mut rng), (x + y) & 0xF, "{x}+{y}");
    }
}
