//! Seeded chaos harness for the multi-tenant [`KeyStore`].
//!
//! Threads hammer a byte-budgeted store with more tenants than the
//! budget fits, while a fault-injecting backend corrupts blobs on load.
//! The store's contract under that pressure:
//!
//! - **pinned keys are never evicted**: replaying the journal, every
//!   tenant's pin/unpin balance is exactly zero at each of its evict
//!   events (the store only victimizes keys with no outstanding pins,
//!   and [`PinnedKey`]'s drop journals the unpin *before* releasing);
//! - **corruption is loud and transient**: a corrupted blob surfaces as
//!   [`TfheError::KeyCorrupted`] to that caller and the store stays
//!   serviceable — later loads of the same tenant can succeed;
//! - **an impossible budget is an error, not a livelock**: a budget
//!   smaller than one key fails every `get` with
//!   [`TfheError::KeyBudgetExceeded`] promptly (a hang here is caught
//!   by the CI timeout);
//! - **counters and journal reconcile**: hits/misses/loads/evictions
//!   match the journal's event counts, and resident bytes equal loaded
//!   minus evicted bytes.
//!
//! All seeds are fixed, so CI failures replay locally. Tests honor
//! `MORPHLING_CHAOS_SEED` so CI can sweep several seeds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use morphling_tfhe::faults;
use morphling_tfhe::keystore::{
    KeyBackend, KeyEventKind, KeyStore, KeyStoreBootstrapper, MemoryBackend, TenantId,
};
use morphling_tfhe::{ClientKey, Dispatcher, Lut, ParamSet, ServerKey, TfheError, TfheParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Base seed, overridable via `MORPHLING_CHAOS_SEED` (CI sweeps 1..=3).
/// The override is mixed with the per-test default so two tests never
/// collapse onto the same stream.
fn chaos_seed(default: u64) -> u64 {
    std::env::var("MORPHLING_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|s| s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ default)
        .unwrap_or(default)
}

/// Serialized-key footprint of one `ParamSet::Test` server key, the
/// store's accounting unit.
fn one_key_bytes(params: &TfheParams) -> u64 {
    params.bsk_total_bytes_fourier() + params.ksk_total_bytes()
}

/// Generate `n` tenants' keys into a fresh in-memory backend. Returns
/// the backend and the client keys (index = tenant id).
fn populate(n: u64, rng: &mut StdRng) -> (Arc<MemoryBackend>, Vec<ClientKey>) {
    let params = ParamSet::Test.params();
    let backend = Arc::new(MemoryBackend::new());
    let mut clients = Vec::new();
    for t in 0..n {
        let ck = ClientKey::generate(params.clone(), rng);
        let sk = ServerKey::new(&ck, rng);
        backend.insert_server_key(TenantId::new(t), &sk);
        clients.push(ck);
    }
    (backend, clients)
}

/// Replay the journal and panic if any tenant is evicted while its
/// pin/unpin balance is nonzero. Returns the number of evict events.
fn assert_no_pinned_eviction(store: &KeyStore) -> usize {
    let mut balance: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    let mut evictions = 0;
    for (i, e) in store.events().iter().enumerate() {
        match e.kind {
            KeyEventKind::Pin => *balance.entry(e.tenant).or_default() += 1,
            KeyEventKind::Unpin => *balance.entry(e.tenant).or_default() -= 1,
            KeyEventKind::Evict { .. } => {
                evictions += 1;
                let b = balance.get(&e.tenant).copied().unwrap_or(0);
                assert_eq!(
                    b, 0,
                    "journal event {i}: tenant {} evicted with pin balance {b}",
                    e.tenant
                );
            }
            _ => {}
        }
    }
    evictions
}

/// Counters must be derivable from the journal: same event counts, and
/// resident bytes = loaded − evicted bytes.
fn assert_counters_reconcile(store: &KeyStore) {
    let events = store.events();
    let count = |label: &str| events.iter().filter(|e| e.kind.label() == label).count() as u64;
    let stats = store.stats();
    assert_eq!(stats.hits, count("hit"), "hits vs journal");
    assert_eq!(stats.misses, count("miss"), "misses vs journal");
    assert_eq!(stats.loads, count("load"), "loads vs journal");
    assert_eq!(stats.evictions, count("evict"), "evictions vs journal");
    assert_eq!(count("pin"), count("unpin"), "all pins released");
    let loaded: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            KeyEventKind::Load { bytes } => Some(bytes),
            _ => None,
        })
        .sum();
    let evicted: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            KeyEventKind::Evict { bytes } => Some(bytes),
            _ => None,
        })
        .sum();
    assert_eq!(stats.bytes_resident, loaded - evicted, "bytes vs journal");
    assert_eq!(
        stats.resident_keys,
        stats.loads - stats.evictions,
        "resident keys vs loads − evictions"
    );
}

/// Five tenants fighting over a two-key budget from eight threads:
/// every serve succeeds, evictions happen constantly, and the journal
/// proves no pinned key was ever a victim.
#[test]
fn eviction_races_never_evict_pinned_keys() {
    let seed = chaos_seed(0xE51C);
    let mut rng = StdRng::seed_from_u64(seed);
    const TENANTS: u64 = 5;
    let (backend, _clients) = populate(TENANTS, &mut rng);
    let params = ParamSet::Test.params();
    let store = Arc::new(KeyStore::new(backend, 2 * one_key_bytes(&params)));

    const THREADS: u64 = 8;
    const OPS: u64 = 32;
    let served = AtomicU64::new(0);
    let budget_raced = AtomicU64::new(0);
    std::thread::scope(|s| {
        for thread in 0..THREADS {
            let store = Arc::clone(&store);
            let served = &served;
            let budget_raced = &budget_raced;
            s.spawn(move || {
                for op in 0..OPS {
                    let draw = faults::unit_sample(seed, 0x7E4A, thread, op as u32);
                    let tenant = TenantId::new((draw * TENANTS as f64) as u64 % TENANTS);
                    match store.get(tenant) {
                        Ok(pinned) => {
                            // Hold the pin across a short seeded window
                            // so evictors race against live pins, then
                            // release.
                            std::hint::black_box(pinned.params().poly_size);
                            let hold = faults::unit_sample(seed, 0x4F1D, thread, op as u32);
                            std::thread::sleep(Duration::from_micros((hold * 150.0) as u64));
                            served.fetch_add(1, Ordering::SeqCst);
                        }
                        // When every resident is pinned, a load must
                        // fail loudly rather than wait on a pin (that
                        // way lies livelock) — a legal chaos outcome.
                        Err(TfheError::KeyBudgetExceeded { .. }) => {
                            budget_raced.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(other) => panic!("t{thread} op{op}: {other}"),
                    }
                }
            });
        }
    });

    let evictions = assert_no_pinned_eviction(&store);
    assert!(evictions > 0, "5 tenants over a 2-key budget must evict");
    assert_counters_reconcile(&store);
    let stats = store.stats();
    let served = served.load(Ordering::SeqCst);
    let budget_raced = budget_raced.load(Ordering::SeqCst);
    assert_eq!(served + budget_raced, THREADS * OPS, "no serve lost");
    assert!(served > budget_raced, "most serves should land");
    assert_eq!(stats.hits + stats.misses, THREADS * OPS);
    assert_eq!(
        stats.load_failures, budget_raced,
        "failures all budget races"
    );
    assert!(stats.bytes_resident <= store.budget_bytes(), "over budget");
}

/// A backend that deterministically flips one payload byte on a
/// seeded fraction of loads — a disk or wire corruption stand-in.
struct CorruptingBackend {
    inner: Arc<MemoryBackend>,
    seed: u64,
    rate: f64,
    attempts: AtomicU64,
}

impl KeyBackend for CorruptingBackend {
    fn load(&self, tenant: TenantId) -> Result<Vec<u8>, TfheError> {
        let mut blob = self.inner.load(tenant)?;
        let attempt = self.attempts.fetch_add(1, Ordering::SeqCst);
        if faults::decide(self.seed, 0xC0_44BE, attempt, 0, self.rate) {
            let mid = blob.len() / 2;
            blob[mid] ^= 0x40;
        }
        Ok(blob)
    }
}

/// Corrupted loads surface as typed errors to the caller that hit
/// them, never wedge the load slot, and leave the store able to serve
/// the same tenant on a later, clean load.
#[test]
fn corrupt_loads_surface_typed_errors_and_do_not_wedge() {
    let seed = chaos_seed(0xC044);
    let mut rng = StdRng::seed_from_u64(seed);
    const TENANTS: u64 = 3;
    let (memory, _clients) = populate(TENANTS, &mut rng);
    let params = ParamSet::Test.params();
    let backend = Arc::new(CorruptingBackend {
        inner: memory,
        seed,
        rate: 0.25,
        attempts: AtomicU64::new(0),
    });
    // Two-key budget over three tenants: constant reloads keep the
    // corrupting path hot instead of hiding behind cache hits.
    let store = Arc::new(KeyStore::new(backend, 2 * one_key_bytes(&params)));

    const THREADS: u64 = 6;
    const OPS: u64 = 24;
    let served: Vec<AtomicU64> = (0..TENANTS).map(|_| AtomicU64::new(0)).collect();
    let corrupted = AtomicU64::new(0);
    std::thread::scope(|s| {
        for thread in 0..THREADS {
            let store = Arc::clone(&store);
            let served = &served;
            let corrupted = &corrupted;
            s.spawn(move || {
                for op in 0..OPS {
                    let draw = faults::unit_sample(seed, 0x7E4B, thread, op as u32);
                    let tenant = (draw * TENANTS as f64) as u64 % TENANTS;
                    match store.get(TenantId::new(tenant)) {
                        Ok(pinned) => {
                            assert_eq!(pinned.tenant().raw(), tenant);
                            served[tenant as usize].fetch_add(1, Ordering::SeqCst);
                        }
                        Err(TfheError::KeyCorrupted { .. }) => {
                            corrupted.fetch_add(1, Ordering::SeqCst);
                        }
                        // A load can also lose the budget race while
                        // other tenants hold pins — loud, typed, fine.
                        Err(TfheError::KeyBudgetExceeded { .. }) => {}
                        Err(other) => panic!("t{thread} op{op}: unexpected error {other}"),
                    }
                }
            });
        }
    });

    // Every op resolved (the scope joined); the interesting outcomes
    // both actually happened, and corruption never took a tenant down
    // for good.
    assert!(
        corrupted.load(Ordering::SeqCst) > 0,
        "rate 0.25 never fired"
    );
    for (t, count) in served.iter().enumerate() {
        assert!(
            count.load(Ordering::SeqCst) > 0,
            "tenant {t} was never served despite transient corruption"
        );
    }
    let stats = store.stats();
    assert!(
        stats.load_failures >= corrupted.load(Ordering::SeqCst),
        "every surfaced corruption is a counted load failure"
    );
    let corrupt_events = store
        .events()
        .iter()
        .filter(|e| e.kind.label() == "corrupt")
        .count() as u64;
    assert_eq!(
        corrupt_events,
        corrupted.load(Ordering::SeqCst),
        "journal corrupt events vs surfaced KeyCorrupted errors"
    );
    assert_no_pinned_eviction(&store);
}

/// A budget that cannot fit even one key must fail every serve with
/// [`TfheError::KeyBudgetExceeded`] immediately — not retry, not spin,
/// not evict-nothing forever. The test completing at all is the
/// anti-livelock assertion; the CI timeout is the backstop.
#[test]
fn budget_below_one_key_is_a_loud_error_not_a_livelock() {
    let seed = chaos_seed(0xB0D6);
    let mut rng = StdRng::seed_from_u64(seed);
    let (backend, _clients) = populate(2, &mut rng);
    let params = ParamSet::Test.params();
    let store = Arc::new(KeyStore::new(backend, one_key_bytes(&params) / 2));

    std::thread::scope(|s| {
        for thread in 0..4u64 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for op in 0..4u64 {
                    match store.get(TenantId::new((thread + op) % 2)) {
                        Ok(_) => panic!("t{thread} op{op}: a half-key budget can never serve"),
                        Err(TfheError::KeyBudgetExceeded { .. }) => {}
                        Err(other) => {
                            panic!("t{thread} op{op}: want KeyBudgetExceeded, got {other}")
                        }
                    }
                }
            });
        }
    });

    let stats = store.stats();
    assert_eq!(stats.resident_keys, 0, "nothing can be resident");
    assert_eq!(stats.bytes_resident, 0);
    assert_eq!(stats.load_failures, 16, "every get failed at publish");
}

/// End-to-end: a dispatcher serving three tenants through a keystore
/// with a corrupting backend loses nothing — every submission resolves
/// as a bit-correct completion or a typed failure, and the dispatcher's
/// key-cache counters agree with the store's journal.
#[test]
fn dispatcher_over_chaotic_keystore_loses_nothing() {
    let seed = chaos_seed(0xD15C);
    let mut rng = StdRng::seed_from_u64(seed);
    const TENANTS: u64 = 3;
    let (memory, clients) = populate(TENANTS, &mut rng);
    let params = ParamSet::Test.params();
    let backend = Arc::new(CorruptingBackend {
        inner: memory,
        seed,
        rate: 0.2,
        attempts: AtomicU64::new(0),
    });
    let store = Arc::new(KeyStore::new(backend, 2 * one_key_bytes(&params)));
    let d = Dispatcher::builder()
        .max_batch_size(4)
        .max_linger(Duration::from_millis(1))
        .key_store(Arc::clone(&store))
        .build(KeyStoreBootstrapper::new(Arc::clone(&store)));

    let lut = Arc::new(Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4));
    let mut tickets = Vec::new();
    for round in 0..4u64 {
        for t in 0..TENANTS {
            let m = (round + t) % 4;
            let ct = clients[t as usize].encrypt(m, &mut rng);
            tickets.push((
                t,
                (m + 1) % 4,
                d.submit_for(TenantId::new(t), ct, Arc::clone(&lut), None)
                    .unwrap(),
            ));
        }
    }
    let submitted = tickets.len() as u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    for (t, want, ticket) in tickets {
        match ticket.wait() {
            Ok(out) => {
                assert_eq!(
                    clients[t as usize].decrypt(&out),
                    want,
                    "tenant {t}: completed result must be bit-correct"
                );
                completed += 1;
            }
            Err(TfheError::KeyCorrupted { .. }) | Err(TfheError::KeyBudgetExceeded { .. }) => {
                failed += 1;
            }
            Err(other) => panic!("tenant {t}: unexpected error {other}"),
        }
    }
    assert_eq!(completed + failed, submitted, "no ticket lost");

    let stats = d.stats();
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.failed, failed);
    assert_eq!(stats.submitted, submitted);
    let ks = store.stats();
    assert_eq!(stats.key_hits, ks.hits);
    assert_eq!(stats.key_misses, ks.misses);
    assert_eq!(stats.key_evictions, ks.evictions);
    assert_eq!(stats.key_bytes_resident, ks.bytes_resident);
    assert_no_pinned_eviction(&store);
    assert_counters_reconcile(&store);
}
