//! Seeded chaos harness for the self-healing [`BootstrapEngine`].
//!
//! Each scenario installs a deterministic [`FaultPlan`] (worker panics,
//! wedged jobs rescued by the watchdog, silently corrupted outputs caught
//! by the sanity check) and asserts the **survival contract**:
//!
//! - every returned output is bit-identical to the fault-free reference
//!   (the sequential [`Bootstrapper`] path on the bare [`ServerKey`]);
//! - the engine ends the run `Healthy` or `Degraded`, never hung;
//! - the fault counters and the event journal actually recorded the
//!   injected faults (the run was a real chaos run, not a silent no-op);
//! - a zero-rate plan is a bit-for-bit no-op.
//!
//! All seeds are fixed, so CI failures replay locally.

use std::sync::Arc;
use std::time::Duration;

use morphling_math::TorusScalar;

use morphling_tfhe::{
    noise, BatchRequest, BootstrapEngine, Bootstrapper, ClientKey, EngineHealth, FaultPlan, Lut,
    LweCiphertext, ParamSet, ServerKey, TfheError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(seed: u64) -> (ClientKey, Arc<ServerKey>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
    let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
    (ck, sk, rng)
}

/// Shared-LUT batch through any [`Bootstrapper`] backend.
fn bb(
    backend: &impl Bootstrapper,
    cts: &[LweCiphertext],
    lut: &Lut,
) -> Result<Vec<LweCiphertext>, TfheError> {
    backend.try_bootstrap_batch(&BatchRequest::shared(cts.to_vec(), lut.clone()))
}

fn batch(ck: &ClientKey, rng: &mut StdRng, n: usize) -> Vec<morphling_tfhe::LweCiphertext> {
    (0..n).map(|m| ck.encrypt(m as u64 % 4, rng)).collect()
}

/// Scenario 1: workers panic mid-job at a 25% rate. The engine must
/// catch every panic, respawn the worker loop, retry the failed chunks,
/// and still return the fault-free bits.
#[test]
fn chaos_worker_panics_survive_bit_identical() {
    let (ck, sk, mut rng) = setup(9001);
    let lut = Lut::identity(sk.params().poly_size, 4);
    let cts = batch(&ck, &mut rng, 16);
    let reference = bb(&*sk, &cts, &lut).expect("reference");

    let engine = BootstrapEngine::builder()
        .workers(3)
        .chunk_size(2)
        .respawn_budget(64)
        .max_retries(8)
        .retry_backoff(Duration::from_micros(100))
        .fault_plan(FaultPlan::seeded(0xC0FFEE).with_worker_panic(0.25))
        .build(Arc::clone(&sk))
        .expect("spawn pool");

    let out = bb(&engine, &cts, &lut).expect("survive panics");
    assert_eq!(out, reference, "survivors must be bit-identical");

    let stats = engine.stats();
    assert!(stats.panics > 0, "the plan must actually fire");
    assert_eq!(stats.respawns, stats.panics);
    assert!(stats.retries >= stats.panics);
    assert!(
        matches!(stats.health, EngineHealth::Healthy | EngineHealth::Degraded),
        "never Failed, never hung: {:?}",
        stats.health
    );
    assert!(
        !engine.fault_events().is_empty(),
        "fault journal must record the incidents"
    );
}

/// Scenario 2: jobs wedge (sleep far past the watchdog timeout) at a 30%
/// rate. The watchdog must declare them wedged, re-dispatch, and the late
/// duplicate replies must be deduplicated without corrupting order.
#[test]
fn chaos_wedged_jobs_are_rescued_by_the_watchdog() {
    let (ck, sk, mut rng) = setup(9002);
    let lut = Lut::identity(sk.params().poly_size, 4);
    let cts = batch(&ck, &mut rng, 8);
    let reference = bb(&*sk, &cts, &lut).expect("reference");

    let engine = BootstrapEngine::builder()
        .workers(3)
        .chunk_size(1)
        .max_retries(16)
        .retry_backoff(Duration::from_micros(100))
        .job_timeout(Duration::from_millis(250))
        .fault_plan(FaultPlan::seeded(0xBEEF).with_wedged_job(0.3, Duration::from_millis(1500)))
        .build(Arc::clone(&sk))
        .expect("spawn pool");

    let out = bb(&engine, &cts, &lut).expect("survive wedges");
    assert_eq!(out, reference, "survivors must be bit-identical");

    let stats = engine.stats();
    assert!(stats.watchdog_timeouts > 0, "the watchdog must have fired");
    assert!(stats.retries > 0);
    assert_eq!(stats.panics, 0, "wedges are not panics");
    assert_eq!(stats.health, EngineHealth::Healthy, "no worker retired");
}

/// Scenario 3: outputs are silently corrupted (message flipped, shape
/// intact) at a 30% rate. An output sanity check against the reference
/// must catch every corruption and drive retries until clean bits come
/// back.
#[test]
fn chaos_corrupted_outputs_are_caught_by_the_sanity_check() {
    let (ck, sk, mut rng) = setup(9003);
    let lut = Lut::identity(sk.params().poly_size, 4);
    let cts = batch(&ck, &mut rng, 12);
    let reference = bb(&*sk, &cts, &lut).expect("reference");

    let check_ref = reference.clone();
    let engine = BootstrapEngine::builder()
        .workers(2)
        .chunk_size(3)
        .max_retries(16)
        .retry_backoff(Duration::from_micros(100))
        .fault_plan(FaultPlan::seeded(0xDEAD).with_corrupt_output(0.3))
        .output_check(move |i, ct| ct == &check_ref[i])
        .build(Arc::clone(&sk))
        .expect("spawn pool");

    let out = bb(&engine, &cts, &lut).expect("survive corruption");
    assert_eq!(out, reference, "only clean bits may be returned");

    let stats = engine.stats();
    assert!(stats.check_failures > 0, "the check must have fired");
    assert!(stats.retries > 0);
    assert_eq!(stats.health, EngineHealth::Healthy);
}

/// A zero-rate plan must be indistinguishable from no plan at all:
/// identical outputs, zero fault counters, empty journal, Healthy.
#[test]
fn chaos_zero_rate_plan_is_a_noop() {
    let (ck, sk, mut rng) = setup(9004);
    let lut = Lut::identity(sk.params().poly_size, 4);
    let cts = batch(&ck, &mut rng, 10);

    let plain = BootstrapEngine::builder()
        .workers(2)
        .chunk_size(2)
        .build(Arc::clone(&sk))
        .expect("spawn pool");
    let chaos = BootstrapEngine::builder()
        .workers(2)
        .chunk_size(2)
        .fault_plan(FaultPlan::none())
        .build(Arc::clone(&sk))
        .expect("spawn pool");

    let a = bb(&plain, &cts, &lut).expect("plain");
    let b = bb(&chaos, &cts, &lut).expect("zero-rate");
    assert_eq!(a, b, "zero-rate plan must not change a single bit");
    assert_eq!(a, bb(&*sk, &cts, &lut).expect("reference"));

    let stats = chaos.stats();
    assert_eq!(
        (
            stats.panics,
            stats.retries,
            stats.watchdog_timeouts,
            stats.check_failures
        ),
        (0, 0, 0, 0)
    );
    assert!(chaos.fault_events().is_empty());
    assert_eq!(stats.health, EngineHealth::Healthy);
}

/// A pool whose every worker dies (panic rate 1.0, zero respawns) must
/// fail fast with an error — and subsequent submissions must return
/// `EngineShutDown` instead of hanging.
#[test]
fn chaos_full_pool_death_errors_instead_of_hanging() {
    let (ck, sk, mut rng) = setup(9005);
    let lut = Lut::identity(sk.params().poly_size, 4);
    let cts = batch(&ck, &mut rng, 4);

    let engine = BootstrapEngine::builder()
        .workers(2)
        .respawn_budget(0)
        .max_retries(2)
        .retry_backoff(Duration::ZERO)
        .fault_plan(FaultPlan::seeded(0xF00D).with_worker_panic(1.0))
        .build(Arc::clone(&sk))
        .expect("spawn pool");

    let err = bb(&engine, &cts, &lut).expect_err("a fully dead pool cannot serve");
    assert!(
        matches!(
            err,
            TfheError::WorkerPanicked { .. } | TfheError::EngineShutDown
        ),
        "got {err:?}"
    );
    // Let the respawn-exhausted workers finish retiring, then verify the
    // fail-fast path.
    while engine.alive_workers() > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(engine.health(), EngineHealth::Failed);
    assert_eq!(
        bb(&engine, &cts, &lut).err(),
        Some(TfheError::EngineShutDown)
    );
    let events = engine.fault_events();
    assert!(events.len() >= 2, "both workers journaled their demise");
}

/// Shutdown must be idempotent, and submissions after shutdown must
/// error — the degraded-mode contract's terminal state.
#[test]
fn chaos_shutdown_is_idempotent_and_terminal() {
    let (ck, sk, mut rng) = setup(9006);
    let lut = Lut::identity(sk.params().poly_size, 4);
    let cts = batch(&ck, &mut rng, 3);
    let mut engine = BootstrapEngine::builder()
        .workers(2)
        .build(Arc::clone(&sk))
        .expect("spawn pool");
    bb(&engine, &cts, &lut).expect("healthy batch");
    engine.shutdown();
    engine.shutdown();
    engine.shutdown();
    assert_eq!(engine.health(), EngineHealth::Failed);
    assert_eq!(
        bb(&engine, &cts, &lut).err(),
        Some(TfheError::EngineShutDown)
    );
}

/// Monte-Carlo validation of [`noise::failure_probability`]: encrypt many
/// ciphertexts under a deliberately noisy parameter set and compare the
/// empirical decode-failure fraction against the analytic `erfc` model.
#[test]
fn chaos_failure_probability_matches_measured_errors() {
    let mut params = ParamSet::Test.params();
    // Inflate the fresh-encryption noise until the analytic model predicts
    // a ~10% failure rate: margin/(σ√2) ≈ 1.16 at p = 4.
    params.lwe_noise_std = 0.038;
    let p = params.plaintext_modulus;
    let predicted = noise::failure_probability(params.lwe_noise_std, p);
    assert!(
        (0.05..0.20).contains(&predicted),
        "test setup: predicted {predicted}"
    );

    let mut rng = StdRng::seed_from_u64(9007);
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let margin = noise::decryption_margin(p);
    let trials = 4000;
    let failures = (0..trials)
        .filter(|i| {
            let m = i % p;
            let ct = ck.encrypt(m, &mut rng);
            let intended = morphling_math::Torus32::encode(m, 2 * p);
            noise::measured_error(&ck, &ct, intended).abs() >= margin
        })
        .count();
    let empirical = failures as f64 / trials as f64;
    // Binomial std at p≈0.1, n=4000 is ≈0.5%; allow 4σ plus model slack.
    assert!(
        (empirical - predicted).abs() < 0.03,
        "empirical {empirical} vs predicted {predicted}"
    );
}
