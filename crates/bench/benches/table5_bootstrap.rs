//! Table V: bootstrapping latency and throughput — Morphling rows from the
//! cycle simulator, a live-measured CPU row from our functional TFHE, and
//! the paper's published baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_core::{sim::Simulator, ArchConfig};
use morphling_tfhe::{ClientKey, ParamSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::table5_report(true));

    let sim = Simulator::new(ArchConfig::morphling_default());
    let mut g = c.benchmark_group("table5");
    for set in [ParamSet::I, ParamSet::II, ParamSet::III, ParamSet::IV] {
        let params = set.params();
        g.bench_function(format!("simulate_set_{}", params.name), |b| {
            b.iter(|| sim.bootstrap_batch(std::hint::black_box(&params), 16))
        });
    }
    g.sample_size(10);
    // The real thing: our CPU bootstrap at set I (the paper's Concrete row
    // analogue).
    let mut rng = StdRng::seed_from_u64(2);
    let ck = ClientKey::generate(ParamSet::I.params(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let ct = ck.encrypt(1, &mut rng);
    g.bench_function("cpu_bootstrap_set_I", |b| {
        b.iter(|| sk.bootstrap(std::hint::black_box(&ct)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
