//! Persistent-engine throughput: the [`BootstrapEngine`]'s warm worker
//! pool against the per-call [`ParallelServerKey`] baseline (spawn + join
//! every call) and the single-core sequential path, at batch sizes a
//! streaming inference workload produces — all through the unified
//! [`Bootstrapper`] batch API.
//!
//! The engine's win is the amortization Morphling gets for free in
//! hardware: its 16 bootstrapping cores exist for the whole run, so only
//! the software baseline pays per-batch thread setup.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphling_tfhe::{
    BatchRequest, BootstrapEngine, Bootstrapper, ClientKey, Lut, LweCiphertext, ParallelServerKey,
    ParamSet, ServerKey,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared-LUT batch through any [`Bootstrapper`] backend.
fn bb(backend: &impl Bootstrapper, cts: &[LweCiphertext], lut: &Lut) -> Vec<LweCiphertext> {
    backend
        .try_bootstrap_batch(&BatchRequest::shared(cts.to_vec(), lut.clone()))
        .expect("valid batch")
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let params = ParamSet::Test.params();
    let p = params.plaintext_modulus;
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
    let lut = Lut::identity(params.poly_size, p);
    // The issue's framing: ≥4 threads. On boxes with fewer cores both
    // sides time-slice identically, so the comparison stays fair.
    let workers = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(4)
        .clamp(4, 8);

    let engine = BootstrapEngine::builder()
        .workers(workers)
        .build(Arc::clone(&sk))
        .expect("nonzero workers");
    let spawn_per_call = ParallelServerKey::new(Arc::clone(&sk), workers).expect("threads");

    let mut g = c.benchmark_group("throughput_engine");
    g.sample_size(10);
    for batch in [16usize, 64, 128] {
        let cts: Vec<_> = (0..batch)
            .map(|i| ck.encrypt(i as u64 % p, &mut rng))
            .collect();
        // Warm both paths once so neither pays first-touch costs inside
        // the measurement.
        let _ = bb(&engine, &cts, &lut);
        let _ = bb(&spawn_per_call, &cts, &lut);

        g.bench_with_input(BenchmarkId::new("engine", batch), &cts, |b, cts| {
            b.iter(|| bb(&engine, std::hint::black_box(cts), &lut))
        });
        g.bench_with_input(BenchmarkId::new("spawn_per_call", batch), &cts, |b, cts| {
            b.iter(|| bb(&spawn_per_call, std::hint::black_box(cts), &lut))
        });
        if batch <= 16 {
            g.bench_with_input(BenchmarkId::new("sequential", batch), &cts, |b, cts| {
                b.iter(|| bb(&*sk, std::hint::black_box(cts), &lut))
            });
        }
    }
    g.finish();

    let stats = engine.stats();
    println!(
        "engine stats: {} batches, {} bootstraps, {:.1} BS/s per core ({} workers)",
        stats.batches,
        stats.bootstraps,
        stats.bootstraps_per_core_sec(),
        stats.workers
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
