//! Persistent-engine throughput: the [`BootstrapEngine`]'s warm worker
//! pool against the per-call `batch_bootstrap_parallel` baseline (spawn +
//! join every call) and the single-core sequential path, at batch sizes a
//! streaming inference workload produces.
//!
//! The engine's win is the amortization Morphling gets for free in
//! hardware: its 16 bootstrapping cores exist for the whole run, so only
//! the software baseline pays per-batch thread setup.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphling_tfhe::{BootstrapEngine, ClientKey, Lut, ParamSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let params = ParamSet::Test.params();
    let p = params.plaintext_modulus;
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
    let lut = Lut::identity(params.poly_size, p);
    // The issue's framing: ≥4 threads. On boxes with fewer cores both
    // sides time-slice identically, so the comparison stays fair.
    let workers = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(4)
        .clamp(4, 8);

    let engine = BootstrapEngine::builder()
        .workers(workers)
        .build(Arc::clone(&sk))
        .expect("nonzero workers");

    let mut g = c.benchmark_group("throughput_engine");
    g.sample_size(10);
    for batch in [16usize, 64, 128] {
        let cts: Vec<_> = (0..batch)
            .map(|i| ck.encrypt(i as u64 % p, &mut rng))
            .collect();
        // Warm both paths once so neither pays first-touch costs inside
        // the measurement.
        let _ = engine.bootstrap_batch(&cts, &lut).expect("warm-up");
        let _ = sk.batch_bootstrap_parallel(&cts, &lut, workers);

        g.bench_with_input(BenchmarkId::new("engine", batch), &cts, |b, cts| {
            b.iter(|| {
                engine
                    .bootstrap_batch(std::hint::black_box(cts), &lut)
                    .expect("batch")
            })
        });
        g.bench_with_input(BenchmarkId::new("spawn_per_call", batch), &cts, |b, cts| {
            b.iter(|| sk.batch_bootstrap_parallel(std::hint::black_box(cts), &lut, workers))
        });
        if batch <= 16 {
            g.bench_with_input(BenchmarkId::new("sequential", batch), &cts, |b, cts| {
                b.iter(|| sk.batch_bootstrap(std::hint::black_box(cts), &lut))
            });
        }
    }
    g.finish();

    let stats = engine.stats();
    println!(
        "engine stats: {} batches, {} bootstraps, {:.1} BS/s per core ({} workers)",
        stats.batches,
        stats.bootstraps,
        stats.bootstraps_per_core_sec(),
        stats.workers
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
