//! Batched SoA transforms vs per-polynomial transforms — the software
//! VPE-array ablation.
//!
//! Three ways to compute the same `k` negacyclic products at the paper's
//! N = 1024:
//!
//! - `scalar`: one allocating [`NegacyclicFft::mul_int_torus`] call per
//!   polynomial — the pre-batching baseline;
//! - `batched`: one allocating [`NegacyclicFft::mul_int_torus_batch`] call
//!   over a planar [`PolyBatch`] — all lanes in lockstep;
//! - `batched_ws`: the same lockstep kernels through warm caller-owned
//!   buffers (`*_batch_into` + [`BatchScratch`]) — what the bootstrap hot
//!   path uses.
//!
//! All three are bit-identical (asserted before timing). Besides the
//! criterion group, each batch size is timed directly and the results land
//! in `BENCH_transform.json` (CI validates and archives it) with the
//! batched-over-scalar speedup at batch 8 as the headline number.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphling_math::{Polynomial, Torus32};
use morphling_transform::{BatchScratch, NegacyclicFft, PolyBatch, SpectrumBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1024;
const MAX_LANES: usize = 32;

struct Fixture {
    fft: NegacyclicFft,
    digits: Vec<Polynomial<i64>>,
    ts: Vec<Polynomial<Torus32>>,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(2024);
    // Paper set I/II digit range (β up to 2^6) against uniform torus polys.
    let digits: Vec<Polynomial<i64>> = (0..MAX_LANES)
        .map(|_| Polynomial::from_fn(N, |_| rng.gen_range(-32i64..32)))
        .collect();
    let ts: Vec<Polynomial<Torus32>> = (0..MAX_LANES)
        .map(|_| Polynomial::from_fn(N, |_| Torus32::from_raw(rng.gen())))
        .collect();
    Fixture {
        fft: NegacyclicFft::new(N),
        digits,
        ts,
    }
}

/// Time `runs` evaluations of `op`, returning ns per evaluation.
fn time_ns(mut op: impl FnMut(), runs: u32) -> f64 {
    let t0 = Instant::now();
    for _ in 0..runs {
        op();
    }
    t0.elapsed().as_nanos() as f64 / f64::from(runs)
}

fn bench(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("transform_batch");
    g.sample_size(10);

    let mut entries = Vec::new();
    let mut headline = 0.0f64;
    for lanes in [1usize, 2, 4, 8, 16, 32] {
        let ds = &f.digits[..lanes];
        let ts = &f.ts[..lanes];
        let dbatch = PolyBatch::from_polys(ds);
        let tbatch = PolyBatch::from_polys(ts);

        // Warm workspace buffers for the `_into` mode.
        let mut dspec = SpectrumBatch::zero(N, lanes);
        let mut tspec = SpectrumBatch::zero(N, lanes);
        let mut prod = PolyBatch::<Torus32>::zero(N, lanes);
        let mut scratch = BatchScratch::new();

        // Hold all three modes to the bit-identity contract before timing.
        let want: Vec<Polynomial<Torus32>> = ds
            .iter()
            .zip(ts)
            .map(|(d, t)| f.fft.mul_int_torus(d, t))
            .collect();
        assert_eq!(
            f.fft.mul_int_torus_batch(&dbatch, &tbatch).to_polys(),
            want,
            "lanes={lanes}: batched path must be bit-identical"
        );
        f.fft.forward_int_batch_into(&dbatch, &mut dspec);
        f.fft.forward_torus_batch_into(&tbatch, &mut tspec);
        dspec.pointwise_mul_assign(&tspec);
        f.fft
            .inverse_torus_batch_into(&dspec, &mut prod, &mut scratch);
        assert_eq!(
            prod.to_polys(),
            want,
            "lanes={lanes}: workspace path must be bit-identical"
        );

        g.bench_with_input(BenchmarkId::new("scalar", lanes), &lanes, |b, _| {
            b.iter(|| {
                for (d, t) in ds.iter().zip(ts) {
                    std::hint::black_box(f.fft.mul_int_torus(d, t));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("batched", lanes), &lanes, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    f.fft
                        .mul_int_torus_batch(std::hint::black_box(&dbatch), &tbatch),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("batched_ws", lanes), &lanes, |b, _| {
            b.iter(|| {
                f.fft
                    .forward_int_batch_into(std::hint::black_box(&dbatch), &mut dspec);
                f.fft.forward_torus_batch_into(&tbatch, &mut tspec);
                dspec.pointwise_mul_assign(&tspec);
                f.fft
                    .inverse_torus_batch_into(&dspec, &mut prod, &mut scratch);
                std::hint::black_box(&prod);
            })
        });

        // Direct measurement for the JSON artifact; interleave the modes
        // so machine-load drift hits all three alike.
        let (runs, rounds) = (20u32, 5u32);
        let (mut scalar_ns, mut batched_ns, mut ws_ns) = (0.0, 0.0, 0.0);
        for _ in 0..rounds {
            scalar_ns += time_ns(
                || {
                    for (d, t) in ds.iter().zip(ts) {
                        std::hint::black_box(f.fft.mul_int_torus(d, t));
                    }
                },
                runs,
            );
            batched_ns += time_ns(
                || {
                    std::hint::black_box(f.fft.mul_int_torus_batch(&dbatch, &tbatch));
                },
                runs,
            );
            ws_ns += time_ns(
                || {
                    f.fft.forward_int_batch_into(&dbatch, &mut dspec);
                    f.fft.forward_torus_batch_into(&tbatch, &mut tspec);
                    dspec.pointwise_mul_assign(&tspec);
                    f.fft
                        .inverse_torus_batch_into(&dspec, &mut prod, &mut scratch);
                    std::hint::black_box(&prod);
                },
                runs,
            );
        }
        let scalar_ns = scalar_ns / f64::from(rounds);
        let batched_ns = batched_ns / f64::from(rounds);
        let ws_ns = ws_ns / f64::from(rounds);
        let per_poly = |total: f64| total / lanes as f64;
        let speedup_batched = scalar_ns / batched_ns;
        let speedup_ws = scalar_ns / ws_ns;
        if lanes == 8 {
            headline = speedup_batched.max(speedup_ws);
        }
        println!(
            "transform_batch/lanes{lanes}: scalar {:.0} ns/poly, batched {:.0} ns/poly \
             ({speedup_batched:.2}x), batched_ws {:.0} ns/poly ({speedup_ws:.2}x)",
            per_poly(scalar_ns),
            per_poly(batched_ns),
            per_poly(ws_ns),
        );
        entries.push(format!(
            "    {{\"lanes\": {lanes}, \"poly_size\": {N}, \"runs\": {}, \
             \"scalar_ns_per_poly\": {:.1}, \
             \"batched_ns_per_poly\": {:.1}, \
             \"batched_ws_ns_per_poly\": {:.1}, \
             \"speedup_batched\": {speedup_batched:.3}, \
             \"speedup_batched_ws\": {speedup_ws:.3}}}",
            runs * rounds,
            per_poly(scalar_ns),
            per_poly(batched_ns),
            per_poly(ws_ns),
        ));
    }
    g.finish();

    let json = format!(
        "{{\n  \"bench\": \"transform_batch\",\n  \"batched_speedup_at_8\": {headline:.3},\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_transform.json", json) {
        eprintln!("could not write BENCH_transform.json: {e}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
