//! Fig 7a: latency breakdown of bootstrapping across components.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_core::{sim::Simulator, ArchConfig};
use morphling_tfhe::ParamSet;

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::fig7a_report());
    let sim = Simulator::new(ArchConfig::morphling_default());
    c.bench_function("fig7a/breakdown", |b| {
        b.iter(|| {
            let r = sim.bootstrap_batch(std::hint::black_box(&ParamSet::III.params()), 16);
            r.latency_breakdown()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
