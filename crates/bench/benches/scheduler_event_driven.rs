//! Event-driven vs reference list scheduler on a DeepCNN-100-sized
//! program.
//!
//! The seed `HwScheduler::run` rescanned every unscheduled instruction per
//! dispatch (O(n²)) and re-ran the analytical simulator for every
//! `BlindRotate`. The rewrite keeps per-unit ready heaps and memoizes the
//! simulator report, making the same policy O(n log n). This bench pins
//! the speedup on the paper's largest application workload and asserts
//! both implementations still agree on the makespan.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_apps::models;
use morphling_core::sched::{HwScheduler, SwScheduler, Workload};
use morphling_core::ArchConfig;
use morphling_tfhe::ParamSet;

fn bench(c: &mut Criterion) {
    let cfg = ArchConfig::morphling_default();
    let params = ParamSet::I.params();
    let sw = SwScheduler::new(cfg.clone());
    let hw = HwScheduler::new(cfg);
    let deepcnn = models::deep_cnn(100).workload();
    let prog = sw.compile(&deepcnn, &params);
    println!(
        "DeepCNN-100 program: {} instructions across {} levels ({} bootstraps)",
        prog.len(),
        deepcnn.levels.len(),
        deepcnn.total_bootstraps()
    );

    // Headline comparison: one timed run each, same program, same policy.
    let t0 = Instant::now();
    let fast = hw.run(&prog, &params);
    let t_fast = t0.elapsed();
    let t0 = Instant::now();
    let slow = hw.run_reference(&prog, &params);
    let t_slow = t0.elapsed();
    assert_eq!(
        fast.makespan_cycles(),
        slow.makespan_cycles(),
        "schedulers disagree on the DeepCNN-100 makespan"
    );
    let speedup = t_slow.as_secs_f64() / t_fast.as_secs_f64().max(1e-9);
    println!(
        "event-driven {t_fast:?}  vs  reference list {t_slow:?}  ({speedup:.0}x speedup, \
         makespan {} cycles)",
        fast.makespan_cycles()
    );
    assert!(
        speedup > 10.0,
        "event-driven scheduler must be >10x faster on DeepCNN-100 (got {speedup:.1}x)"
    );

    let mut g = c.benchmark_group("scheduler");
    g.bench_function("event_driven/deepcnn100", |b| {
        b.iter(|| hw.run(std::hint::black_box(&prog), &params))
    });
    // A 1000-group flat program — the scaling smoke point of the tests.
    let thousand = sw.compile(&Workload::independent(1000 * sw.group_size()), &params);
    g.bench_function("event_driven/1000_groups", |b| {
        b.iter(|| hw.run(std::hint::black_box(&thousand), &params))
    });
    g.sample_size(3);
    g.bench_function("reference_list/deepcnn100", |b| {
        b.iter(|| hw.run_reference(std::hint::black_box(&prog), &params))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
