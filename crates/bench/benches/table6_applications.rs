//! Table VI: application execution time (XG-Boost, DeepCNN, VGG-9) on
//! Morphling vs the CPU baseline — plus a live encrypted decision-tree
//! inference on the functional substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_apps::functional::{DecisionTree, EncryptedTreeEvaluator};
use morphling_apps::{models, runtime, xgboost::XgBoostModel};
use morphling_tfhe::{ClientKey, ParamSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::table6_report());

    let rt = runtime::AppRuntime::paper_default();
    let mut g = c.benchmark_group("table6");
    g.bench_function("estimate_all_apps", |b| {
        b.iter(|| {
            let apps = [
                XgBoostModel::paper_benchmark().workload(),
                models::deep_cnn(20).workload(),
                models::deep_cnn(50).workload(),
                models::deep_cnn(100).workload(),
                models::vgg9().workload(),
            ];
            apps.map(|w| runtime::estimate(std::hint::black_box(&w), &rt).speedup())
        })
    });

    // A real encrypted tree inference (4 programmable bootstraps).
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let ck = ClientKey::generate(ParamSet::TestMedium.params(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let eval = EncryptedTreeEvaluator::new(&sk);
    let tree = DecisionTree {
        root: (0, 4),
        left: (1, 2),
        right: (1, 6),
        leaves: [0, 1, 2, 3],
    };
    let feats = vec![ck.encrypt(3, &mut rng), ck.encrypt(5, &mut rng)];
    g.bench_function("encrypted_tree_inference", |b| {
        b.iter(|| eval.classify(std::hint::black_box(&tree), &feats))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
