//! Capacity-planning benchmark: calibrate a service model from a live
//! engine run, grid-search the serving-config space for an attainable
//! SLO, and validate the recommendation by replaying the same seeded
//! open-loop load through the real dispatcher.
//!
//! Writes `BENCH_autotune.json` (CI validates and archives it):
//!
//! - `slo_met`: the search found a feasible config for the requested
//!   rate/SLO (the target is derived from the calibrated capacity, so it
//!   is attainable on any host);
//! - `predicted` / `measured`: the simulator's latency profile for the
//!   recommendation and what the real dispatcher measured under the same
//!   arrival schedule;
//! - `p99_agree`: whether the two p99s agree within the DESIGN.md §15
//!   bound (factor [`AGREEMENT_FACTOR`] plus [`AGREEMENT_SLACK`]).
//!
//! Smoke mode (`AUTOTUNE_BENCH_SMOKE=1`) shrinks the simulated and
//! replayed request counts so CI finishes in seconds.
//!
//! [`AGREEMENT_FACTOR`]: morphling_tfhe::autotune::AGREEMENT_FACTOR
//! [`AGREEMENT_SLACK`]: morphling_tfhe::autotune::AGREEMENT_SLACK

use std::time::Duration;

use morphling_bench::autotune::{bench_json, run_autotune};
use morphling_tfhe::autotune::SloTarget;
use morphling_tfhe::ParamSet;

fn main() {
    let smoke = std::env::var_os("AUTOTUNE_BENCH_SMOKE").is_some();
    let (requests, validate) = if smoke { (128, 96) } else { (512, 256) };
    let workers = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(2)
        .min(4);

    // Probe the per-core bootstrap cost first so the benchmark asks for
    // a rate the host can actually sustain (~25% of one core) and an SLO
    // with comfortable headroom (40 bootstrap times, floored at 50 ms) —
    // the bench must be meaningful on fast and slow hosts alike.
    let probe = run_autotune(
        ParamSet::Test,
        SloTarget {
            rate_per_s: 1.0,
            p99: Duration::from_secs(1),
        },
        workers,
        16,
        None,
    )
    .expect("calibration probe");
    let bootstrap = Duration::from_nanos(probe.model.bootstrap_ns);
    let rate = (0.25 / bootstrap.as_secs_f64()).clamp(5.0, 2000.0);
    let slo = (bootstrap * 40).max(Duration::from_millis(50));

    eprintln!(
        "autotune bench: {:.2} ms/bootstrap → target {:.0} req/s @ p99 <= {:.0} ms \
         ({workers} workers, {requests} simulated, {validate} replayed)",
        bootstrap.as_secs_f64() * 1e3,
        rate,
        slo.as_secs_f64() * 1e3
    );
    let outcome = run_autotune(
        ParamSet::Test,
        SloTarget {
            rate_per_s: rate,
            p99: slo,
        },
        workers,
        requests,
        Some(validate),
    )
    .expect("autotune run");
    let r = &outcome.report;
    eprintln!(
        "searched {} candidates in {:.0} ms: slo_met={} predicted p99 {:.2} ms, measured {:.2} ms, agree={:?}",
        r.trajectory.len(),
        outcome.search_wall.as_secs_f64() * 1e3,
        r.slo_met,
        r.predicted.p99.as_secs_f64() * 1e3,
        outcome
            .measured
            .as_ref()
            .map(|m| m.p99.as_secs_f64() * 1e3)
            .unwrap_or(f64::NAN),
        outcome.agree
    );
    let json = bench_json(&outcome);
    if let Err(e) = std::fs::write("BENCH_autotune.json", &json) {
        eprintln!("could not write BENCH_autotune.json: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote BENCH_autotune.json ({} bytes)", json.len());
    assert!(r.slo_met, "derived target must be attainable");
    assert_eq!(outcome.agree, Some(true), "p99 agreement bound violated");
}
