//! Fig 8b: impact of the number of XPUs on throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_core::{sim::Simulator, ArchConfig};
use morphling_tfhe::ParamSet;

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::fig8b_report());
    c.bench_function("fig8b/sweep", |b| {
        b.iter(|| {
            (1..=8usize)
                .map(|x| {
                    Simulator::new(ArchConfig::morphling_default().with_xpus(x))
                        .bootstrap_batch(std::hint::black_box(&ParamSet::A.params()), 4 * x)
                        .throughput_bs_per_s()
                })
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
