//! Fig 7b: throughput/speedup across transform-domain reuse architectures
//! (same compute resources) plus the merge-split FFT contribution.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_core::{sim::Simulator, ArchConfig, ReuseMode};
use morphling_tfhe::ParamSet;

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::fig7b_report());
    let mut g = c.benchmark_group("fig7b");
    for reuse in ReuseMode::ALL {
        g.bench_function(format!("simulate_{reuse}"), |b| {
            let sim = Simulator::new(
                ArchConfig::morphling_default()
                    .with_reuse(reuse)
                    .with_merge_split(false),
            );
            b.iter(|| sim.bootstrap_batch(std::hint::black_box(&ParamSet::C.params()), 16))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
