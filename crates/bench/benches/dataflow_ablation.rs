//! Ablation (§IV-B): ACC-output-stationary vs input-stationary vs
//! BSK-stationary dataflow — the design-choice analysis of DESIGN.md §6.3.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_core::{sim::Simulator, ArchConfig, Dataflow};
use morphling_tfhe::ParamSet;

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::dataflow_ablation_report());
    let mut g = c.benchmark_group("dataflow");
    for df in [
        Dataflow::OutputStationary,
        Dataflow::InputStationary,
        Dataflow::BskStationary,
    ] {
        g.bench_function(format!("{df:?}"), |b| {
            let sim = Simulator::new(ArchConfig::morphling_default().with_dataflow(df));
            b.iter(|| sim.bootstrap_batch(std::hint::black_box(&ParamSet::A.params()), 16))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
