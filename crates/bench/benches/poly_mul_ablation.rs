//! Ablation (DESIGN.md decision #2): negacyclic polynomial multiplication
//! backends — exact integer schoolbook vs FFT vs merge-split pairing —
//! at the paper's polynomial sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphling_math::{negacyclic, Polynomial, Torus32};
use morphling_transform::{NegacyclicFft, NegacyclicNtt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut g = c.benchmark_group("poly_mul");
    for n in [512usize, 1024, 2048] {
        let digits = Polynomial::from_fn(n, |_| rng.gen_range(-64i64..64));
        let digits2 = Polynomial::from_fn(n, |_| rng.gen_range(-64i64..64));
        let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
        let fft = NegacyclicFft::new(n);
        let ntt = NegacyclicNtt::new(n);
        g.bench_with_input(BenchmarkId::new("fft", n), &n, |b, _| {
            b.iter(|| fft.mul_int_torus(std::hint::black_box(&digits), &t))
        });
        g.bench_with_input(BenchmarkId::new("ntt_exact", n), &n, |b, _| {
            b.iter(|| ntt.mul_int_torus(std::hint::black_box(&digits), &t))
        });
        g.bench_with_input(BenchmarkId::new("forward_single", n), &n, |b, _| {
            b.iter(|| fft.forward_int(std::hint::black_box(&digits)))
        });
        g.bench_with_input(
            BenchmarkId::new("forward_merge_split_pair", n),
            &n,
            |b, _| b.iter(|| fft.forward_pair_int(std::hint::black_box(&digits), &digits2)),
        );
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("exact_schoolbook", n), &n, |b, _| {
                b.iter(|| negacyclic::mul_int_torus32(std::hint::black_box(&digits), &t))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
