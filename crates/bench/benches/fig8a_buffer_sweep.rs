//! Fig 8a: impact of the Private-A1 buffer size on latency and throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_core::{sim::Simulator, ArchConfig};
use morphling_tfhe::ParamSet;

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::fig8a_report());
    c.bench_function("fig8a/sweep", |b| {
        b.iter(|| {
            [512usize, 1024, 2048, 4096, 8192, 16384].map(|kb| {
                Simulator::new(ArchConfig::morphling_default().with_private_a1_kb(kb))
                    .bootstrap_batch(std::hint::black_box(&ParamSet::A.params()), 16)
                    .throughput_bs_per_s()
            })
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
