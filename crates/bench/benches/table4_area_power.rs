//! Table IV: area and power breakdown of the Morphling configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_core::{hwmodel, ArchConfig};

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::table4_report());
    c.bench_function("table4/cost_model", |b| {
        b.iter(|| hwmodel::evaluate(std::hint::black_box(&ArchConfig::morphling_default())))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
