//! Hot-path ablation for the zero-allocation blind rotation.
//!
//! Three tiers of the same dataflow, all bit-identical:
//!
//! - `seed`: the original hot path — signed decomposition allocates a
//!   fresh digit vector per *coefficient* (N allocations per component
//!   per CMUX), plus fresh spectra and ciphertexts per step;
//! - `allocating`: the current allocating API ([`rotate_cmux`] chain) —
//!   per-step buffers, but the per-coefficient vectors are gone;
//! - `workspace`: [`blind_rotate_assign`] through a warm
//!   [`BootstrapWorkspace`] — zero heap allocations in steady state (the
//!   software analogue of the paper's fixed POLY-ACC-REG / Coef-buffer
//!   register files; nothing is "allocated" per CMUX in hardware).
//!
//! Two shapes are measured: the `Test` set (N = 256) and an
//! allocation-dominated N = 64 variant. Besides the criterion group, the
//! bench times each tier directly and writes `BENCH_hotpath.json` (CI
//! archives it) with ns per full blind rotation and the speedups.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphling_math::{Polynomial, SignedDecomposer, Torus32, TorusScalar};
use morphling_tfhe::{
    blind_rotate_assign, BootstrapKey, BootstrapWorkspace, ClientKey, ExternalProductEngine,
    GlweCiphertext, ParamSet, TfheParams,
};
use morphling_transform::Spectrum;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    label: &'static str,
    engine: ExternalProductEngine,
    decomposer: SignedDecomposer<Torus32>,
    bsk: BootstrapKey,
    acc0: GlweCiphertext,
    mask: Vec<u64>,
}

fn fixture(label: &'static str, params: TfheParams) -> Fixture {
    let mut rng = StdRng::seed_from_u64(4242);
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let bsk = BootstrapKey::generate(&ck, &mut rng);
    let engine = ExternalProductEngine::new(&params);
    let decomposer = SignedDecomposer::new(params.bsk_decomp);
    let tp = Polynomial::from_fn(params.poly_size, |j| Torus32::encode((j % 4) as u64, 8));
    let acc0 = GlweCiphertext::trivial(tp, params.glwe_dim);
    // Nonzero exponents so every step runs a real external product.
    let mask: Vec<u64> = (1..=params.lwe_dim as u64)
        .map(|i| 1 + (i * 97) % (params.two_n() - 1))
        .collect();
    Fixture {
        label,
        engine,
        decomposer,
        bsk,
        acc0,
        mask,
    }
}

/// The seed's hot path, reproduced through today's public API: the signed
/// decomposition runs coefficient by coefficient, each call returning a
/// freshly allocated digit vector — N heap allocations per component per
/// CMUX step — and every intermediate (digit polys, spectra, accumulator
/// spectra, output components) is built from scratch each step.
fn seed_rotation(f: &Fixture) -> GlweCiphertext {
    let l = f.decomposer.params().level();
    let n = f.acc0.poly_size();
    let k1 = f.acc0.dim() + 1;
    let fft = f.engine.fft();
    let mut acc = f.acc0.clone();
    for (i, &a_tilde) in f.mask.iter().enumerate() {
        if a_tilde == 0 {
            continue;
        }
        let lambda = acc.monomial_mul_minus_one(a_tilde as i64);
        let bsk_i = f.bsk.fourier(i);
        let mut digit_polys: Vec<Polynomial<i64>> = Vec::with_capacity(k1 * l);
        for comp in lambda.components() {
            let mut polys = vec![Polynomial::zero(n); l];
            for j in 0..n {
                let digits = f.decomposer.decompose_scalar(comp[j]);
                for (dp, &d) in polys.iter_mut().zip(&digits) {
                    dp[j] = d;
                }
            }
            digit_polys.extend(polys);
        }
        let mut spectra = Vec::with_capacity(digit_polys.len());
        let mut chunks = digit_polys.chunks_exact(2);
        for pair in &mut chunks {
            let (s0, s1) = fft.forward_pair_int(&pair[0], &pair[1]);
            spectra.push(s0);
            spectra.push(s1);
        }
        if let [last] = chunks.remainder() {
            spectra.push(fft.forward_int(last));
        }
        let mut acc_spec: Vec<Spectrum> = (0..k1).map(|_| Spectrum::zero(n)).collect();
        for (r, ds) in spectra.iter().enumerate() {
            let row = bsk_i.row(r);
            for (u, a) in acc_spec.iter_mut().enumerate() {
                a.mul_acc(ds, &row[u]);
            }
        }
        let mut comps = Vec::with_capacity(k1);
        let mut it = acc_spec.chunks_exact(2);
        for pair in &mut it {
            let (p0, p1) = fft.inverse_pair_torus(&pair[0], &pair[1]);
            comps.push(p0);
            comps.push(p1);
        }
        if let [last] = it.remainder() {
            comps.push(fft.inverse_torus(last));
        }
        acc = acc.add(&GlweCiphertext::from_components(comps));
    }
    acc
}

/// The current allocating API: per-step buffers, no per-coefficient ones.
fn allocating_rotation(f: &Fixture) -> GlweCiphertext {
    let mut acc = f.acc0.clone();
    for (i, &a_tilde) in f.mask.iter().enumerate() {
        if a_tilde == 0 {
            continue;
        }
        acc = f.engine.rotate_cmux(f.bsk.fourier(i), &acc, a_tilde as i64);
    }
    acc
}

fn workspace_rotation(f: &Fixture, ws: &mut BootstrapWorkspace) -> GlweCiphertext {
    let mut acc = f.acc0.clone();
    blind_rotate_assign(&f.engine, &f.bsk, &mut acc, &f.mask, ws);
    acc
}

/// Time `runs` full blind rotations of `op`, returning ns per rotation.
fn time_ns(mut op: impl FnMut() -> GlweCiphertext, runs: u32) -> f64 {
    let t0 = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(op());
    }
    t0.elapsed().as_nanos() as f64 / f64::from(runs)
}

fn bench(c: &mut Criterion) {
    let small = {
        // The Test shape shrunk to N = 64: same gadget, same LWE
        // dimension, an FFT small enough that allocation dominates.
        let mut p = ParamSet::Test.params();
        p.poly_size = 64;
        p
    };
    let fixtures = [
        fixture("test_n256", ParamSet::Test.params()),
        fixture("small_n64", small),
    ];

    let mut g = c.benchmark_group("blind_rotate_hotpath");
    g.sample_size(10);
    let mut entries = Vec::new();
    let mut best_speedup = 0.0f64;
    for f in &fixtures {
        let n = f.acc0.poly_size();
        let mut ws = f.engine.workspace(f.acc0.dim());
        // Warm every path (FFT twiddles, workspace scratch) before
        // measuring, and hold the tiers to their bit-identity contract.
        let reference = seed_rotation(f);
        assert_eq!(reference, allocating_rotation(f), "tiers must agree");
        assert_eq!(
            reference,
            workspace_rotation(f, &mut ws),
            "tiers must agree"
        );

        g.bench_with_input(BenchmarkId::new("seed", n), &f, |b, f| {
            b.iter(|| seed_rotation(std::hint::black_box(f)))
        });
        g.bench_with_input(BenchmarkId::new("allocating", n), &f, |b, f| {
            b.iter(|| allocating_rotation(std::hint::black_box(f)))
        });
        {
            let ws = &mut ws;
            g.bench_with_input(BenchmarkId::new("workspace", n), &f, |b, f| {
                b.iter(|| workspace_rotation(std::hint::black_box(f), ws))
            });
        }

        // Direct measurement for the JSON artifact (criterion's reporting
        // is console-only in the vendored harness). Interleave the tiers
        // so slow drift in machine load hits all three alike.
        let (runs, rounds) = (10u32, 5u32);
        let (mut seed_ns, mut alloc_ns, mut ws_ns) = (0.0, 0.0, 0.0);
        for _ in 0..rounds {
            seed_ns += time_ns(|| seed_rotation(f), runs);
            alloc_ns += time_ns(|| allocating_rotation(f), runs);
            ws_ns += time_ns(|| workspace_rotation(f, &mut ws), runs);
        }
        let (seed_ns, alloc_ns, ws_ns) = (
            seed_ns / f64::from(rounds),
            alloc_ns / f64::from(rounds),
            ws_ns / f64::from(rounds),
        );
        let vs_seed = seed_ns / ws_ns;
        let vs_alloc = alloc_ns / ws_ns;
        best_speedup = best_speedup.max(vs_seed);
        println!(
            "blind_rotate_hotpath/{}: seed {seed_ns:.0} ns, allocating {alloc_ns:.0} ns, \
             workspace {ws_ns:.0} ns per rotation; speedup {vs_seed:.2}x vs seed, \
             {vs_alloc:.2}x vs allocating",
            f.label
        );
        entries.push(format!(
            "    {{\"label\": \"{}\", \"poly_size\": {n}, \"glwe_dim\": {}, \
             \"lwe_dim\": {}, \"runs\": {}, \
             \"seed_ns_per_rotation\": {seed_ns:.1}, \
             \"allocating_ns_per_rotation\": {alloc_ns:.1}, \
             \"workspace_ns_per_rotation\": {ws_ns:.1}, \
             \"speedup_vs_seed\": {vs_seed:.3}, \"speedup_vs_allocating\": {vs_alloc:.3}}}",
            f.label,
            f.acc0.dim(),
            f.mask.len(),
            runs * rounds
        ));
    }
    g.finish();

    let json = format!(
        "{{\n  \"bench\": \"blind_rotate_hotpath\",\n  \"speedup\": {best_speedup:.3},\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_hotpath.json", json) {
        eprintln!("could not write BENCH_hotpath.json: {e}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
