//! Multi-tenant serving throughput vs. key-cache budget — the software
//! analogue of the paper's premise that the bootstrapping working set
//! (~100 MB of transform-domain BSK per key) is what a TFHE server must
//! keep resident to sustain throughput.
//!
//! Six tenants drive a [`Dispatcher`] whose backend serves every batch
//! through a byte-budgeted [`KeyStore`]. The sweep shrinks the budget
//! from "all keys resident" down to a single key slot: each step forces
//! more eviction churn, so the hit rate and throughput curve measures
//! what key-cache pressure costs an oversubscribed server.
//!
//! Writes `BENCH_keystore.json` (CI validates and archives it):
//!
//! - per-budget entries with throughput, hit rate, eviction count,
//!   resident bytes, and p50/p99 end-to-end latency;
//! - `hit_rate_full` / `hit_rate_one`: the curve's endpoints — CI
//!   checks the full-budget run misses exactly once per tenant and
//!   evicts nothing.
//!
//! Smoke mode (`KEYSTORE_BENCH_SMOKE=1`) shrinks the request counts so
//! CI finishes in seconds; the sweep shape is unchanged.

use std::sync::Arc;
use std::time::{Duration, Instant};

use morphling_tfhe::keystore::{KeyStore, KeyStoreBootstrapper, MemoryBackend, TenantId};
use morphling_tfhe::{ClientKey, Dispatcher, DispatcherStats, Lut, ParamSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TENANTS: u64 = 6;

struct BudgetResult {
    budget_keys: u64,
    requests: u64,
    throughput_bs: f64,
    hit_rate: f64,
    stats: DispatcherStats,
}

/// Closed-loop run: one submitter thread per tenant, each pushing its
/// own traffic through a fresh store at the given budget.
fn run_budget(
    backend: &Arc<MemoryBackend>,
    clients: &[ClientKey],
    lut: &Arc<Lut>,
    key_bytes: u64,
    budget_keys: u64,
    per_tenant: usize,
) -> BudgetResult {
    let store = Arc::new(KeyStore::new(
        Arc::clone(backend) as Arc<_>,
        budget_keys * key_bytes,
    ));
    let dispatcher = Dispatcher::builder()
        .max_batch_size(8)
        .max_linger(Duration::from_micros(500))
        .queue_capacity(1024)
        .key_store(Arc::clone(&store))
        .build(KeyStoreBootstrapper::new(Arc::clone(&store)));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (t, ck) in clients.iter().enumerate() {
            let dispatcher = &dispatcher;
            let lut = Arc::clone(lut);
            let mut rng = StdRng::seed_from_u64(0x5EED ^ t as u64);
            s.spawn(move || {
                for i in 0..per_tenant {
                    let ct = ck.encrypt(i as u64 % 4, &mut rng);
                    let ticket = dispatcher
                        .submit_for(TenantId::new(t as u64), ct, Arc::clone(&lut), None)
                        .expect("queue has room");
                    let _ = ticket.wait().expect("request completes");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let requests = TENANTS * per_tenant as u64;
    let stats = dispatcher.stats();
    assert_eq!(stats.completed, requests, "closed loop loses nothing");
    assert_eq!(stats.per_tenant.len() as u64, TENANTS);
    let served = stats.key_hits + stats.key_misses;
    BudgetResult {
        budget_keys,
        requests,
        throughput_bs: requests as f64 / elapsed,
        hit_rate: if served == 0 {
            0.0
        } else {
            stats.key_hits as f64 / served as f64
        },
        stats,
    }
}

fn main() {
    let smoke = std::env::var("KEYSTORE_BENCH_SMOKE").is_ok();
    let per_tenant = if smoke { 8 } else { 64 };

    let mut rng = StdRng::seed_from_u64(0x6057);
    let params = ParamSet::Test.params();
    let backend = Arc::new(MemoryBackend::new());
    let mut clients = Vec::new();
    for t in 0..TENANTS {
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        backend.insert_server_key(TenantId::new(t), &sk);
        clients.push(ck);
    }
    let key_bytes = params.bsk_total_bytes_fourier() + params.ksk_total_bytes();
    let lut = Arc::new(Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4));

    let mut entries = Vec::new();
    for budget_keys in [1u64, 2, 4, TENANTS] {
        let r = run_budget(&backend, &clients, &lut, key_bytes, budget_keys, per_tenant);
        println!(
            "budget {} keys: {:.1} BS/s, hit rate {:.3}, {} evictions, p50 {:?}, p99 {:?}",
            r.budget_keys,
            r.throughput_bs,
            r.hit_rate,
            r.stats.key_evictions,
            r.stats.p50_latency,
            r.stats.p99_latency
        );
        entries.push(r);
    }

    let one = &entries[0];
    let full = entries.last().expect("sweep is nonempty");
    // Full budget: one cold miss per tenant, then pure hits, zero churn.
    assert_eq!(full.stats.key_misses, TENANTS, "full budget cold misses");
    assert_eq!(full.stats.key_evictions, 0, "full budget must not evict");
    assert!(
        full.hit_rate >= one.hit_rate,
        "hit rate must not degrade with budget: full {:.3} < one-key {:.3}",
        full.hit_rate,
        one.hit_rate
    );
    assert!(
        one.stats.key_evictions > 0,
        "a one-key budget over {TENANTS} tenants must churn"
    );

    let rows: Vec<String> = entries
        .iter()
        .map(|r| {
            format!(
                "    {{\"budget_keys\": {}, \"budget_bytes\": {}, \"requests\": {}, \
                 \"throughput_bs\": {:.1}, \"hit_rate\": {:.4}, \"hits\": {}, \
                 \"misses\": {}, \"evictions\": {}, \"bytes_resident\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}}}",
                r.budget_keys,
                r.budget_keys * key_bytes,
                r.requests,
                r.throughput_bs,
                r.hit_rate,
                r.stats.key_hits,
                r.stats.key_misses,
                r.stats.key_evictions,
                r.stats.key_bytes_resident,
                r.stats.p50_latency.as_micros(),
                r.stats.p99_latency.as_micros(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"keystore_throughput\",\n  \"smoke\": {smoke},\n  \
         \"tenants\": {TENANTS},\n  \"key_bytes\": {key_bytes},\n  \
         \"hit_rate_one\": {:.4},\n  \"hit_rate_full\": {:.4},\n  \
         \"entries\": [\n{}\n  ]\n}}\n",
        one.hit_rate,
        full.hit_rate,
        rows.join(",\n")
    );
    println!(
        "keystore_throughput: hit rate {:.3} (1 key) -> {:.3} ({} keys)",
        one.hit_rate, full.hit_rate, TENANTS
    );
    if let Err(e) = std::fs::write("BENCH_keystore.json", json) {
        eprintln!("could not write BENCH_keystore.json: {e}");
    }
}
