//! Fig 1: operation/memory/time breakdown of bootstrapping at the 128-bit
//! configuration. Prints the regenerated figure data, then measures the
//! real stage split (blind rotation vs key switch) of our CPU
//! implementation at the Fig 1 parameters.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_tfhe::{ClientKey, Lut, ParamSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::fig1_report());

    let mut rng = StdRng::seed_from_u64(1);
    let params = ParamSet::Fig1.params();
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let ct = ck.encrypt(1, &mut rng);
    let lut = Lut::identity(params.poly_size, params.plaintext_modulus);

    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("cpu_blind_rotation_and_extract", |b| {
        b.iter(|| sk.programmable_bootstrap_no_ks(std::hint::black_box(&ct), &lut))
    });
    let extracted = sk.programmable_bootstrap_no_ks(&ct, &lut);
    g.bench_function("cpu_key_switch", |b| {
        b.iter(|| {
            sk.key_switch_key()
                .key_switch(std::hint::black_box(&extracted))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
