//! Latency under load for the dynamic-batching [`Dispatcher`] — the
//! software analogue of the paper's §V claim that batch formation is what
//! turns per-bootstrap latency into throughput.
//!
//! Closed-loop submitter threads (each submits one request, waits for its
//! result, repeats) drive a `Dispatcher` over a warm [`BootstrapEngine`]
//! pool, sweeping **offered load** (submitter count) × **linger budget**
//! × **micro-batch cap**. `max_batch_size = 1` is the no-batching
//! baseline: every request executes alone, serialized through the
//! batcher, exactly like a naive request-per-call server. The batched
//! configurations coalesce concurrent submitters into engine-wide waves.
//!
//! Writes `BENCH_dispatch.json` (CI validates and archives it):
//!
//! - `speedup`: best batched-vs-unbatched throughput ratio at the same
//!   offered load;
//! - `parallelism`: the cores this host exposes — on a single-core
//!   runner both configurations serialize and the speedup is ~1, so CI
//!   only enforces the ≥2x bar when `parallelism >= 4`;
//! - per-scenario entries with throughput, p50/p95/p99 queue+execute
//!   latency, mean batch size, and the p99 bound (`max_linger` + the
//!   slowest batch execution) the dispatcher is expected to respect.
//!
//! Smoke mode (`DISPATCH_BENCH_SMOKE=1`) shrinks the request counts so
//! CI finishes in seconds; the sweep shape is unchanged.

use std::sync::Arc;
use std::time::{Duration, Instant};

use morphling_tfhe::{
    BootstrapEngine, ClientKey, Dispatcher, DispatcherStats, Lut, LweCiphertext, ParamSet,
    ServerKey,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct ScenarioResult {
    label: String,
    submitters: usize,
    max_batch: usize,
    linger: Duration,
    requests: u64,
    throughput_bs: f64,
    stats: DispatcherStats,
    /// Slowest single batch execution observed (for the p99 bound).
    max_exec: Duration,
}

/// Drive one dispatcher configuration with closed-loop submitters and
/// return its measured throughput + latency profile.
fn run_scenario(
    engine: &Arc<BootstrapEngine>,
    cts: &[LweCiphertext],
    lut: &Arc<Lut>,
    submitters: usize,
    per_submitter: usize,
    max_batch: usize,
    linger: Duration,
) -> ScenarioResult {
    let dispatcher = Dispatcher::builder()
        .max_batch_size(max_batch)
        .max_linger(linger)
        .queue_capacity(1024)
        .build(Arc::clone(engine));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..submitters {
            let dispatcher = &dispatcher;
            let ct = cts[t % cts.len()].clone();
            let lut = Arc::clone(lut);
            s.spawn(move || {
                for _ in 0..per_submitter {
                    let ticket = dispatcher
                        .submit(ct.clone(), Arc::clone(&lut), None)
                        .expect("queue has room");
                    let _ = ticket.wait().expect("request completes");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let requests = (submitters * per_submitter) as u64;
    let max_exec = dispatcher
        .spans()
        .iter()
        .map(|s| s.exec)
        .max()
        .unwrap_or(Duration::ZERO);
    let stats = dispatcher.stats();
    assert_eq!(stats.completed, requests, "closed loop loses nothing");
    ScenarioResult {
        label: format!(
            "load{submitters}_batch{max_batch}_linger{}us",
            linger.as_micros()
        ),
        submitters,
        max_batch,
        linger,
        requests,
        throughput_bs: requests as f64 / elapsed,
        stats,
        max_exec,
    }
}

fn main() {
    let smoke = std::env::var("DISPATCH_BENCH_SMOKE").is_ok();
    let per_submitter = if smoke { 4 } else { 16 };
    let parallelism = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let workers = parallelism.clamp(1, 8);

    let mut rng = StdRng::seed_from_u64(4321);
    let params = ParamSet::Test.params();
    let p = params.plaintext_modulus;
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
    let lut = Arc::new(Lut::identity(params.poly_size, p));
    let engine = Arc::new(
        BootstrapEngine::builder()
            .workers(workers)
            .build(Arc::clone(&sk))
            .expect("nonzero workers"),
    );
    let cts: Vec<LweCiphertext> = (0..8).map(|i| ck.encrypt(i % p, &mut rng)).collect();
    // Warm the pool (first-touch transform tables, thread wake-up).
    let _ = run_scenario(&engine, &cts, &lut, 2, 2, 2, Duration::from_micros(200));

    let loads = [2usize, 8];
    let lingers = [Duration::from_micros(500), Duration::from_millis(2)];
    let batched_cap = 32usize;

    let mut entries = Vec::new();
    let mut speedup = 0.0f64;
    for &load in &loads {
        // Baseline: no batching, no linger — a request-per-call server.
        let base = run_scenario(&engine, &cts, &lut, load, per_submitter, 1, Duration::ZERO);
        println!(
            "{}: {:.1} BS/s, p50 {:?}, p99 {:?}, mean batch {:.2}",
            base.label,
            base.throughput_bs,
            base.stats.p50_latency,
            base.stats.p99_latency,
            base.stats.mean_batch_size
        );
        let base_tput = base.throughput_bs;
        entries.push(base);
        for &linger in &lingers {
            let r = run_scenario(
                &engine,
                &cts,
                &lut,
                load,
                per_submitter,
                batched_cap,
                linger,
            );
            // The dispatcher's latency contract: a request waits at most
            // one linger window plus the batch it lands in.
            let bound = linger + r.max_exec + Duration::from_millis(if smoke { 50 } else { 20 });
            println!(
                "{}: {:.1} BS/s, p50 {:?}, p99 {:?}, mean batch {:.2} (p99 bound {:?})",
                r.label,
                r.throughput_bs,
                r.stats.p50_latency,
                r.stats.p99_latency,
                r.stats.mean_batch_size,
                bound
            );
            assert!(
                r.stats.p99_latency <= bound,
                "{}: p99 {:?} exceeds linger + slowest batch ({:?})",
                r.label,
                r.stats.p99_latency,
                bound
            );
            speedup = speedup.max(r.throughput_bs / base_tput);
            entries.push(r);
        }
    }

    let rows: Vec<String> = entries
        .iter()
        .map(|r| {
            format!(
                "    {{\"label\": \"{}\", \"submitters\": {}, \"max_batch\": {}, \
                 \"linger_us\": {}, \"requests\": {}, \"throughput_bs\": {:.1}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
                 \"mean_batch_size\": {:.3}, \"batches\": {}, \"max_exec_us\": {}}}",
                r.label,
                r.submitters,
                r.max_batch,
                r.linger.as_micros(),
                r.requests,
                r.throughput_bs,
                r.stats.p50_latency.as_micros(),
                r.stats.p95_latency.as_micros(),
                r.stats.p99_latency.as_micros(),
                r.stats.mean_batch_size,
                r.stats.batches,
                r.max_exec.as_micros(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"dispatch_latency\",\n  \"parallelism\": {parallelism},\n  \
         \"workers\": {workers},\n  \"smoke\": {smoke},\n  \"speedup\": {speedup:.3},\n  \
         \"entries\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    println!("dispatch_latency: best batched speedup {speedup:.2}x at parallelism {parallelism}");
    if let Err(e) = std::fs::write("BENCH_dispatch.json", json) {
        eprintln!("could not write BENCH_dispatch.json: {e}");
    }
}
