//! Multi-value bootstrapping: k LUTs of one input for one blind rotation.
//!
//! The common-factor plan ([`MultiLutPlan`](morphling_tfhe::MultiLutPlan))
//! rotates a shared accumulator once and derives every LUT's output from
//! it with a cheap sparse MAC, so k outputs cost one rotation plus k
//! derivations instead of k full rotations. This bench pins the amortized
//! per-LUT speedup:
//!
//! - `fused`: [`ServerKey::try_programmable_bootstrap_many`] — one
//!   rotation, k extractions;
//! - `separate`: [`ServerKey::try_programmable_bootstrap_many_separate`]
//!   — the same derivation paying one rotation per LUT (bit-identical to
//!   `fused` by construction, which the bench asserts before timing).
//!
//! Besides the criterion group, each shape is timed directly and the
//! results land in `BENCH_multivalue.json` (CI validates and archives it)
//! with ns per LUT and the `amortized_speedup` at k = 4.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphling_tfhe::{ClientKey, Lut, LweCiphertext, ParamSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    server: ServerKey,
    ct: LweCiphertext,
    luts: Vec<Lut>,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(4343);
    let params = ParamSet::Test.params();
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let server = ServerKey::new(&ck, &mut rng);
    let ct = ck.encrypt(2, &mut rng);
    let p = params.plaintext_modulus;
    // Eight distinct small-range LUTs — the shapes applications fan out
    // (comparisons, clamps, affine relabelings).
    let luts: Vec<Lut> = (0..8)
        .map(|i| {
            let i = i as u64;
            Lut::from_fn(params.poly_size, p, move |m| match i % 4 {
                0 => (m + i) % p,
                1 => u64::from(m > i % 3),
                2 => m / 2,
                _ => (3 * m + i) % p,
            })
        })
        .collect();
    Fixture { server, ct, luts }
}

/// Time `runs` evaluations of `op`, returning ns per evaluation.
fn time_ns(mut op: impl FnMut() -> Vec<LweCiphertext>, runs: u32) -> f64 {
    let t0 = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(op());
    }
    t0.elapsed().as_nanos() as f64 / f64::from(runs)
}

fn bench(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("multivalue_bootstrap");
    g.sample_size(10);

    let mut entries = Vec::new();
    let mut k4_speedup = 0.0f64;
    for k in [1usize, 2, 4, 8] {
        let luts = &f.luts[..k];
        // Hold the two paths to their bit-identity contract before timing.
        let fused = f
            .server
            .try_programmable_bootstrap_many(&f.ct, luts)
            .unwrap();
        let separate = f
            .server
            .try_programmable_bootstrap_many_separate(&f.ct, luts)
            .unwrap();
        assert_eq!(fused, separate, "k={k}: paths must be bit-identical");

        g.bench_with_input(BenchmarkId::new("fused", k), &k, |b, _| {
            b.iter(|| {
                f.server
                    .try_programmable_bootstrap_many(std::hint::black_box(&f.ct), luts)
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("separate", k), &k, |b, _| {
            b.iter(|| {
                f.server
                    .try_programmable_bootstrap_many_separate(std::hint::black_box(&f.ct), luts)
                    .unwrap()
            })
        });

        // Direct measurement for the JSON artifact; interleave the two
        // paths so machine-load drift hits both alike.
        let (runs, rounds) = (10u32, 5u32);
        let (mut fused_ns, mut separate_ns) = (0.0, 0.0);
        for _ in 0..rounds {
            fused_ns += time_ns(
                || {
                    f.server
                        .try_programmable_bootstrap_many(&f.ct, luts)
                        .unwrap()
                },
                runs,
            );
            separate_ns += time_ns(
                || {
                    f.server
                        .try_programmable_bootstrap_many_separate(&f.ct, luts)
                        .unwrap()
                },
                runs,
            );
        }
        let fused_ns = fused_ns / f64::from(rounds);
        let separate_ns = separate_ns / f64::from(rounds);
        let per_lut_fused = fused_ns / k as f64;
        let per_lut_separate = separate_ns / k as f64;
        let speedup = separate_ns / fused_ns;
        if k == 4 {
            k4_speedup = speedup;
        }
        println!(
            "multivalue_bootstrap/k{k}: fused {per_lut_fused:.0} ns/LUT, \
             separate {per_lut_separate:.0} ns/LUT; amortized speedup {speedup:.2}x"
        );
        entries.push(format!(
            "    {{\"k\": {k}, \"runs\": {}, \
             \"fused_ns_per_lut\": {per_lut_fused:.1}, \
             \"separate_ns_per_lut\": {per_lut_separate:.1}, \
             \"fused_ns_total\": {fused_ns:.1}, \
             \"separate_ns_total\": {separate_ns:.1}, \
             \"amortized_speedup\": {speedup:.3}}}",
            runs * rounds
        ));
    }
    g.finish();

    let json = format!(
        "{{\n  \"bench\": \"multivalue_bootstrap\",\n  \"amortized_speedup\": {k4_speedup:.3},\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_multivalue.json", json) {
        eprintln!("could not write BENCH_multivalue.json: {e}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
