//! Fig 3: reduction in domain-transform operations from transform-domain
//! reuse, per parameter set and reuse type.

use criterion::{criterion_group, criterion_main, Criterion};
use morphling_core::opcount::Fig3Row;
use morphling_tfhe::ParamSet;

fn bench(c: &mut Criterion) {
    println!("{}", morphling_bench::fig3_report());
    c.bench_function("fig3/transform_count_model", |b| {
        b.iter(|| {
            [ParamSet::A, ParamSet::B, ParamSet::C]
                .map(|s| Fig3Row::for_params(std::hint::black_box(&s.params())))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
