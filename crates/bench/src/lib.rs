//! Report generators for every table and figure of the Morphling
//! evaluation. Each function returns the regenerated artifact as a
//! formatted table (with the paper's values alongside ours); the Criterion
//! benches and the `report` binary are thin wrappers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod autotune;

use std::fmt::Write as _;
use std::time::Instant;

use morphling_apps::{models, runtime, xgboost::XgBoostModel};
use morphling_core::opcount::{bootstrap_memory, cpu_bootstrap_ops, Fig3Row};
use morphling_core::reference::{
    baselines_for, TABLE_VI_CPU_SECONDS, TABLE_VI_MORPHLING_PAPER, TABLE_V_MORPHLING_PAPER,
};
use morphling_core::sched::{HwScheduler, SwScheduler, Workload};
use morphling_core::sim::Simulator;
use morphling_core::{hwmodel, ArchConfig, ReuseMode};
use morphling_tfhe::{
    BatchRequest, BootstrapEngine, Bootstrapper, ClientKey, EngineStats, ParallelServerKey,
    ParamSet, ServerKey, TfheParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Resolve a Table III set by name.
pub fn params_by_name(name: &str) -> TfheParams {
    match name {
        "I" => ParamSet::I.params(),
        "II" => ParamSet::II.params(),
        "III" => ParamSet::III.params(),
        "IV" => ParamSet::IV.params(),
        "A" => ParamSet::A.params(),
        "B" => ParamSet::B.params(),
        "C" => ParamSet::C.params(),
        "FIG1" => ParamSet::Fig1.params(),
        _ => panic!("unknown parameter set {name}"),
    }
}

/// Measure our CPU (functional TFHE) bootstrap: returns
/// `(latency_ms, bootstraps_per_second)` for `iters` identity bootstraps
/// at `set`, single-threaded.
pub fn measure_cpu_bootstrap(set: ParamSet, iters: u32) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(7777);
    let params = set.params();
    let ck = ClientKey::generate(params, &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let ct = ck.encrypt(1, &mut rng);
    // Warm-up.
    let _ = sk.bootstrap(&ct);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(sk.bootstrap(std::hint::black_box(&ct)));
    }
    let elapsed = start.elapsed().as_secs_f64() / iters as f64;
    (elapsed * 1e3, 1.0 / elapsed)
}

/// Measure multi-threaded CPU bootstrap throughput (BS/s) over a batch —
/// the software analogue of the paper's 64-core CPU baseline.
pub fn measure_cpu_bootstrap_parallel(set: ParamSet, batch: usize, threads: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(7778);
    let params = set.params();
    let p = params.plaintext_modulus;
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let lut = morphling_tfhe::Lut::identity(params.poly_size, p);
    let psk = ParallelServerKey::new(std::sync::Arc::new(sk), threads).expect("nonzero threads");
    let cts: Vec<_> = (0..batch)
        .map(|i| ck.encrypt(i as u64 % p, &mut rng))
        .collect();
    // Warm-up one round.
    let warm = BatchRequest::shared(cts[..threads.min(batch)].to_vec(), lut.clone());
    let _ = psk.try_bootstrap_batch(&warm);
    let start = Instant::now();
    let out = psk
        .try_bootstrap_batch(&BatchRequest::shared(cts, lut))
        .expect("validated batch");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(out.len(), batch);
    batch as f64 / elapsed
}

/// Measure the persistent [`BootstrapEngine`]'s throughput (BS/s) over a
/// batch, with the pool already warm — the steady-state number a stream
/// of batches sees. Also returns the engine's own [`EngineStats`] so
/// callers can calibrate the CPU cost model from the same run.
pub fn measure_engine_bootstrap(set: ParamSet, batch: usize, workers: usize) -> (f64, EngineStats) {
    let mut rng = StdRng::seed_from_u64(7779);
    let params = set.params();
    let p = params.plaintext_modulus;
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = std::sync::Arc::new(ServerKey::new(&ck, &mut rng));
    let engine = BootstrapEngine::builder()
        .workers(workers)
        .build(sk)
        .expect("nonzero worker count");
    let lut = morphling_tfhe::Lut::identity(params.poly_size, p);
    let cts: Vec<_> = (0..batch)
        .map(|i| ck.encrypt(i as u64 % p, &mut rng))
        .collect();
    // Warm-up one round (first-touch transform tables, thread wake-up).
    let warm = BatchRequest::shared(cts[..workers.min(batch).max(1)].to_vec(), lut.clone());
    let _ = engine.try_bootstrap_batch(&warm);
    engine.reset_stats();
    let start = Instant::now();
    let out = engine
        .try_bootstrap_batch(&BatchRequest::shared(cts, lut))
        .expect("validated batch");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(out.len(), batch);
    (batch as f64 / elapsed, engine.stats())
}

/// **Fig 1**: operation / memory breakdown of one bootstrap at the 128-bit
/// configuration (N=1024, n=481, k=2, l_b=4, l_k=9).
pub fn fig1_report() -> String {
    let params = ParamSet::Fig1.params();
    let ops = cpu_bootstrap_ops(&params);
    let mem = bootstrap_memory(&params);
    let total = ops.total() as f64;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig 1 — bootstrapping breakdown ({} = N={}, n={}, k={}, l_b={}, l_k={})",
        params.name,
        params.poly_size,
        params.lwe_dim,
        params.glwe_dim,
        params.bsk_decomp.level(),
        params.ksk_decomp.level()
    );
    let _ = writeln!(s, "  operations (multiplications):            paper");
    let _ = writeln!(
        s,
        "    I/FFT         {:>12}  ({:5.1}%)       ~88%",
        ops.transform,
        100.0 * ops.transform as f64 / total
    );
    let _ = writeln!(
        s,
        "    poly-mult     {:>12}  ({:5.1}%)",
        ops.pointwise,
        100.0 * ops.pointwise as f64 / total
    );
    let _ = writeln!(
        s,
        "    key-switch    {:>12}  ({:5.1}%)       ~1.9%",
        ops.key_switch,
        100.0 * ops.key_switch as f64 / total
    );
    let _ = writeln!(
        s,
        "    others        {:>12}  ({:5.1}%)       ~1%",
        ops.other,
        100.0 * ops.other as f64 / total
    );
    let _ = writeln!(s, "  memory:                                  paper");
    let _ = writeln!(
        s,
        "    BSK           {:>9.1} MB                101.4 MB",
        mem.bsk as f64 / 1048576.0
    );
    let _ = writeln!(
        s,
        "    KSK           {:>9.1} MB                 33.8 MB",
        mem.ksk as f64 / 1048576.0
    );
    let _ = writeln!(
        s,
        "    working set   {:>9.3} MB",
        mem.working as f64 / 1048576.0
    );
    s
}

/// **Fig 3**: reduction in domain-transform operations per reuse type.
pub fn fig3_report() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig 3 — domain transforms per bootstrap on the 4x4 VPE array"
    );
    let _ = writeln!(
        s,
        "  set  (k,l_b)   no-reuse   input-reuse (reduction)   in+out-reuse (reduction)"
    );
    for set in [ParamSet::A, ParamSet::B, ParamSet::C] {
        let p = set.params();
        let row = Fig3Row::for_params(&p);
        let _ = writeln!(
            s,
            "  {:>3}  ({},{})    {:>7}    {:>7} ({:4.1}%)          {:>7} ({:4.1}%)",
            p.name,
            row.k_lb.0,
            row.k_lb.1,
            row.no_reuse,
            row.input_reuse,
            100.0 * row.input_reduction(),
            row.input_output_reuse,
            100.0 * row.input_output_reduction(),
        );
    }
    let _ = writeln!(
        s,
        "  paper: up to 46752 transforms; 25–37.5% input reuse; up to 83.3% in+out reuse"
    );
    s
}

/// **Table IV**: area and power breakdown at 28 nm.
pub fn table4_report() -> String {
    let cfg = ArchConfig::morphling_default();
    let b = hwmodel::evaluate(&cfg);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table IV — area/power breakdown (ours | paper total 74.79 mm² / 53.00 W)"
    );
    for row in &b.xpu_detail {
        let _ = writeln!(
            s,
            "  {:<28} {:>7.2} mm²  {:>6.2} W",
            row.component, row.cost.area_mm2, row.cost.power_w
        );
    }
    let xpu = hwmodel::xpu_subtotal(&cfg);
    let _ = writeln!(
        s,
        "  {:<28} {:>7.2} mm²  {:>6.2} W",
        "XPU (subtotal)", xpu.area_mm2, xpu.power_w
    );
    for row in &b.rows {
        let _ = writeln!(
            s,
            "  {:<28} {:>7.2} mm²  {:>6.2} W",
            row.component, row.cost.area_mm2, row.cost.power_w
        );
    }
    let t = b.total();
    let _ = writeln!(
        s,
        "  {:<28} {:>7.2} mm²  {:>6.2} W",
        "Total", t.area_mm2, t.power_w
    );
    s
}

/// **Table V**: bootstrapping latency/throughput across platforms.
/// `measured_cpu` optionally adds a live measurement of our own functional
/// TFHE implementation (slow — a few seconds).
pub fn table5_report(measured_cpu: bool) -> String {
    let sim = Simulator::new(ArchConfig::morphling_default());
    let mut s = String::new();
    let _ = writeln!(s, "Table V — bootstrapping latency and throughput");
    let _ = writeln!(
        s,
        "  {:<24} {:>4}  {:>12} {:>14}",
        "platform", "set", "latency(ms)", "tput(BS/s)"
    );
    for set in ["I", "II", "III", "IV"] {
        for b in baselines_for(set) {
            let _ = writeln!(
                s,
                "  {:<24} {:>4}  {:>12.2} {:>14.0}   [paper baseline]",
                format!("{} ({})", b.system, b.platform),
                b.param_set,
                b.latency_ms,
                b.throughput_bs_s
            );
        }
    }
    if measured_cpu {
        for set in [ParamSet::I, ParamSet::II] {
            let (lat, tput) = measure_cpu_bootstrap(set, 3);
            let _ = writeln!(
                s,
                "  {:<24} {:>4}  {:>12.2} {:>14.1}   [measured: our CPU impl, 1 core]",
                "ours (CPU functional)",
                set.params().name,
                lat,
                tput
            );
        }
        let threads = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(4);
        let tput = measure_cpu_bootstrap_parallel(ParamSet::I, 2 * threads, threads);
        let _ = writeln!(
            s,
            "  {:<24} {:>4}  {:>12} {:>14.1}   [measured: our CPU impl, {threads} threads]",
            "ours (CPU functional)", "I", "-", tput
        );
        let (engine_tput, stats) = measure_engine_bootstrap(ParamSet::I, 2 * threads, threads);
        let _ = writeln!(
            s,
            "  {:<24} {:>4}  {:>12} {:>14.1}   [measured: persistent engine, {threads} workers, {:.1} BS/s per core]",
            "ours (CPU engine)",
            "I",
            "-",
            engine_tput,
            stats.bootstraps_per_core_sec()
        );
    }
    for &(set, paper_lat, paper_tput) in TABLE_V_MORPHLING_PAPER {
        let r = sim.bootstrap_batch(&params_by_name(set), 16);
        let _ = writeln!(
            s,
            "  {:<24} {:>4}  {:>12.2} {:>14.0}   [ours: simulator; paper {paper_lat} ms / {paper_tput} BS/s]",
            "Morphling (ASIC 28nm)",
            set,
            r.latency_ms(),
            r.throughput_bs_per_s()
        );
    }
    s
}

/// **Fig 7-a**: latency breakdown across components.
pub fn fig7a_report() -> String {
    let sim = Simulator::new(ArchConfig::morphling_default());
    let mut s = String::new();
    let _ = writeln!(s, "Fig 7a — latency breakdown (paper: XPU 88–93%)");
    let _ = writeln!(s, "  set    MS        XPU(BR)    SE        KS");
    for set in ["I", "II", "III", "IV"] {
        let r = sim.bootstrap_batch(&params_by_name(set), 16);
        let (ms, br, se, ks) = r.latency_breakdown();
        let _ = writeln!(
            s,
            "  {:>3}   {:6.2}%   {:6.2}%   {:6.2}%   {:6.2}%",
            set,
            ms * 100.0,
            br * 100.0,
            se * 100.0,
            ks * 100.0
        );
    }
    s
}

/// **Fig 7-b**: throughput and speed-up per transform-domain reuse type
/// (same compute resources), sets A/B/C, plus the merge-split FFT bar.
pub fn fig7b_report() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig 7b — throughput per reuse architecture (speedup vs No-Reuse)"
    );
    let _ = writeln!(
        s,
        "  paper speedups: input 1.3–1.6x; in+out 2.0/2.9/3.9x (A/B/C); +merge-split 1.2–1.3x; total 2.6–5.3x"
    );
    for set in [ParamSet::A, ParamSet::B, ParamSet::C] {
        let params = set.params();
        let tput = |reuse: ReuseMode, ms: bool| {
            Simulator::new(
                ArchConfig::morphling_default()
                    .with_reuse(reuse)
                    .with_merge_split(ms),
            )
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s()
        };
        let no = tput(ReuseMode::NoReuse, false);
        let input = tput(ReuseMode::InputReuse, false);
        let io = tput(ReuseMode::InputOutputReuse, false);
        let io_ms = tput(ReuseMode::InputOutputReuse, true);
        let _ = writeln!(
            s,
            "  set {:>2}: no-reuse {:>7.0} | input {:>7.0} ({:.2}x) | in+out {:>7.0} ({:.2}x) | +merge-split {:>7.0} ({:.2}x total)",
            params.name, no, input, input / no, io, io / no, io_ms, io_ms / no
        );
    }
    s
}

/// **Fig 8-a**: impact of Private-A1 size on latency/throughput (set A).
pub fn fig8a_report() -> String {
    let params = ParamSet::A.params();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig 8a — Private-A1 sweep (set A; paper: degrades below 4096 KB, stable above)"
    );
    let _ = writeln!(s, "  A1(KB)   streams   latency(ms)   tput(BS/s)");
    for kb in [512usize, 1024, 2048, 3072, 4096, 6144, 8192, 16384] {
        let r = Simulator::new(ArchConfig::morphling_default().with_private_a1_kb(kb))
            .bootstrap_batch(&params, 16);
        let _ = writeln!(
            s,
            "  {:>6}   {:>7}   {:>11.3} {:>12.0}",
            kb,
            r.stream_batch,
            r.latency_ms(),
            r.throughput_bs_per_s()
        );
    }
    s
}

/// **Fig 8-b**: impact of the number of XPUs on throughput (set A).
pub fn fig8b_report() -> String {
    let params = ParamSet::A.params();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig 8b — XPU-count sweep (set A; paper: linear to 4, then memory-bound)"
    );
    let _ = writeln!(s, "  XPUs   cores   tput(BS/s)   stall");
    for xpus in 1..=8usize {
        let r = Simulator::new(ArchConfig::morphling_default().with_xpus(xpus))
            .bootstrap_batch(&params, 4 * xpus);
        let _ = writeln!(
            s,
            "  {:>4}   {:>5}   {:>10.0}   {:>5.2}",
            xpus,
            r.cores,
            r.throughput_bs_per_s(),
            r.stall
        );
    }
    s
}

/// **Table VI**: application execution time, Morphling vs CPU.
pub fn table6_report() -> String {
    let rt = runtime::AppRuntime::paper_default();
    let workloads = vec![
        ("XG-Boost", XgBoostModel::paper_benchmark().workload()),
        ("DeepCNN-20", models::deep_cnn(20).workload()),
        ("DeepCNN-50", models::deep_cnn(50).workload()),
        ("DeepCNN-100", models::deep_cnn(100).workload()),
        ("VGG-9", models::vgg9().workload()),
    ];
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table VI — application execution time (paper speedups 88–144x)"
    );
    let _ = writeln!(
        s,
        "  {:<12} {:>9} {:>13} {:>9}   {:>18} {:>13}",
        "app", "CPU(s)", "Morphling(s)", "speedup", "paper CPU/Morph(s)", "paper speedup"
    );
    for (name, w) in &workloads {
        let est = runtime::estimate(w, &rt);
        let paper_cpu = TABLE_VI_CPU_SECONDS
            .iter()
            .find(|&&(n, _)| n == *name)
            .expect("workload missing from TABLE_VI_CPU_SECONDS")
            .1;
        let paper_m = TABLE_VI_MORPHLING_PAPER
            .iter()
            .find(|&&(n, _)| n == *name)
            .expect("workload missing from TABLE_VI_MORPHLING_PAPER")
            .1;
        let _ = writeln!(
            s,
            "  {:<12} {:>9.2} {:>13.3} {:>8.0}x   {:>8.2} / {:<7.2} {:>12.0}x",
            name,
            est.cpu_seconds,
            est.morphling_seconds,
            est.speedup(),
            paper_cpu,
            paper_m,
            paper_cpu / paper_m
        );
    }
    s
}

/// **Dataflow ablation** (§IV-B): why Morphling is ACC-output stationary.
/// Input-stationary spills transform-domain partial sums into Private-A1
/// (halving stream batching); BSK-stationary additionally streams
/// accumulator state through HBM.
pub fn dataflow_ablation_report() -> String {
    use morphling_core::Dataflow;
    let mut s = String::new();
    let _ = writeln!(s, "Dataflow ablation (§IV-B) — why ACC-output stationary");
    let _ = writeln!(
        s,
        "  set   dataflow             streams   stall   tput(BS/s)"
    );
    for set in [ParamSet::A, ParamSet::B, ParamSet::C] {
        let params = set.params();
        for df in [
            Dataflow::OutputStationary,
            Dataflow::InputStationary,
            Dataflow::BskStationary,
        ] {
            let r = Simulator::new(ArchConfig::morphling_default().with_dataflow(df))
                .bootstrap_batch(&params, 16);
            let _ = writeln!(
                s,
                "  {:>3}   {:<19}  {:>6}   {:>5.2}   {:>10.0}",
                params.name,
                format!("{df:?}"),
                r.stream_batch,
                r.stall,
                r.throughput_bs_per_s()
            );
        }
    }
    s
}

/// **Execution trace** (`report --trace <out.json>`): schedule `workload`
/// through the SW → HW scheduler pair with tracing on, merge in the
/// simulator's per-stage latency spans (same cycle time base), and return
/// the combined Chrome-trace JSON (loadable in `chrome://tracing` or
/// Perfetto). See DESIGN.md §"Execution tracing" for the format.
pub fn scheduler_trace_json(workload: &Workload, set: ParamSet) -> String {
    let cfg = ArchConfig::morphling_default();
    let params = set.params();
    let sw = SwScheduler::new(cfg.clone());
    let hw = HwScheduler::new(cfg.clone());
    let prog = sw.compile(workload, &params);
    let (_, mut trace) = hw.run_traced(&prog, &params);
    let report = Simulator::new(cfg.clone()).bootstrap_batch(&params, cfg.bootstrap_cores());
    trace.merge(&report.to_trace());
    trace.to_chrome_json()
}

/// [`scheduler_trace_json`] for a DeepCNN-X workload at parameter set I —
/// the `report` binary's `--trace` payload.
pub fn deepcnn_trace_json(x: usize) -> String {
    scheduler_trace_json(&models::deep_cnn(x).workload(), ParamSet::I)
}

/// Headline summary (abstract claims).
pub fn summary_report() -> String {
    let sim = Simulator::new(ArchConfig::morphling_default());
    let ours_i = sim
        .bootstrap_batch(&ParamSet::I.params(), 16)
        .throughput_bs_per_s();
    let ours_ii = sim
        .bootstrap_batch(&ParamSet::II.params(), 16)
        .throughput_bs_per_s();
    let cpu = baselines_for("I")
        .find(|r| r.platform == "CPU")
        .expect("CPU baseline missing for set I")
        .throughput_bs_s;
    let nufhe = baselines_for("II")
        .find(|r| r.system == "NuFHE")
        .expect("NuFHE baseline missing for set II")
        .throughput_bs_s;
    let matcha = baselines_for("I")
        .find(|r| r.system == "MATCHA")
        .expect("MATCHA baseline missing for set I")
        .throughput_bs_s;
    let strix = baselines_for("I")
        .find(|r| r.system == "Strix")
        .expect("Strix baseline missing for set I")
        .throughput_bs_s;
    let mut s = String::new();
    let _ = writeln!(s, "Headline claims (abstract)            ours        paper");
    let _ = writeln!(
        s,
        "  peak throughput (set I)        {:>9.0}      147,615 BS/s",
        ours_i
    );
    let _ = writeln!(
        s,
        "  speedup vs CPU (Concrete)      {:>8.0}x        3440x",
        ours_i / cpu
    );
    let _ = writeln!(
        s,
        "  speedup vs GPU (NuFHE, II)     {:>8.0}x         143x",
        ours_ii / nufhe
    );
    let _ = writeln!(
        s,
        "  speedup vs MATCHA              {:>8.1}x         14.7x",
        ours_i / matcha
    );
    let _ = writeln!(
        s,
        "  speedup vs Strix               {:>8.2}x         1.98x",
        ours_i / strix
    );
    // Energy efficiency from the cost model + simulator (supplementary).
    let power = hwmodel::evaluate(&ArchConfig::morphling_default())
        .total()
        .power_w;
    let ours_mj = sim
        .bootstrap_batch(&ParamSet::I.params(), 16)
        .energy_per_bootstrap_mj(power);
    let strix_mj = 77.14 / strix * 1e3;
    let _ = writeln!(
        s,
        "  energy per bootstrap (set I)   {:>7.2} mJ     (Strix: {:.2} mJ)",
        ours_mj, strix_mj
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_report_renders() {
        for report in [
            fig1_report(),
            fig3_report(),
            table4_report(),
            table5_report(false),
            fig7a_report(),
            fig7b_report(),
            fig8a_report(),
            fig8b_report(),
            table6_report(),
            summary_report(),
        ] {
            assert!(report.lines().count() >= 3, "report too short:\n{report}");
        }
    }

    #[test]
    fn fig3_report_contains_the_46752_datum() {
        assert!(fig3_report().contains("46752"));
    }

    #[test]
    fn trace_json_is_structurally_valid() {
        let json = scheduler_trace_json(&Workload::independent(64).then(32, 10_000), ParamSet::I);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        // Scheduler spans and merged simulator spans both present.
        assert!(json.contains("XPU.BR"));
        assert!(json.contains("BlindRotate"));
        // Structural brace balance, skipping string contents (span names
        // like `DMA.LDBSK [0..500)` carry an unmatched `[`).
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            match (in_str, esc, c) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (true, ..) => {}
                (false, _, '"') => in_str = true,
                (false, _, '{' | '[') => depth += 1,
                (false, _, '}' | ']') => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON braces");
    }

    #[test]
    fn table4_report_totals() {
        let r = table4_report();
        assert!(r.contains("Total"));
        assert!(r.contains("HBM2e"));
    }
}
