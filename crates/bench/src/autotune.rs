//! Capacity planning via simulator-in-the-loop autotuning (the serving
//! analogue of the paper's §VI co-simulation): calibrate a
//! [`ServiceModel`] from a live [`BootstrapEngine`] run, grid-search the
//! [`ServingConfig`](morphling_tfhe::ServingConfig) space for a target
//! arrival rate and p99 SLO, then optionally validate the
//! recommendation by replaying the *same* seeded open-loop load through
//! the real [`Dispatcher`] and checking the predicted/measured p99
//! agreement bound.
//!
//! The `report autotune` subcommand and the `autotune_search` bench are
//! thin wrappers over [`run_autotune`]; the JSON writers here define the
//! schemas CI validates (`autotune_config.json`, `BENCH_autotune.json`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use morphling_core::trace::ExecutionTrace;
use morphling_tfhe::autotune::{
    autotune, p99_agree, replay_open_loop, AutotuneReport, LoadSpec, MeasuredProfile, ServiceModel,
    SloTarget,
};
use morphling_tfhe::{
    AutotuneRequest, BatchRequest, Bootstrapper, ClientKey, Dispatcher, EngineStats, Lut, ParamSet,
    ServerKey, TfheError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything a capacity-planning run produced: the calibration
/// measurement, the search verdict, and (when validation ran) the real
/// dispatcher's measured profile with the agreement verdict.
pub struct AutotuneOutcome {
    /// Parameter set the calibration engine ran at.
    pub set: ParamSet,
    /// Engine stats the service model was calibrated from.
    pub stats: EngineStats,
    /// The calibrated service model.
    pub model: ServiceModel,
    /// The search verdict (recommended config, predicted profile,
    /// trajectory).
    pub report: AutotuneReport,
    /// Wall time the search took.
    pub search_wall: Duration,
    /// Measured profile from replaying the recommended config through
    /// the real dispatcher (`None` when validation was skipped).
    pub measured: Option<MeasuredProfile>,
    /// Whether predicted and measured p99 agree within the DESIGN.md §15
    /// bound (`None` when validation was skipped).
    pub agree: Option<bool>,
}

/// Calibrate → search → (optionally) validate, all at `set`.
///
/// Calibration bootstraps a warm batch through a `workers`-wide
/// [`BootstrapEngine`] and derives the per-core cost from the engine's
/// own busy counters. The search then looks for the cheapest config
/// sustaining `rate_per_s` at `p99`, considering up to `workers`
/// workers. With `validate`, the recommended config is built into a real
/// engine + dispatcher stack and replayed under the same seeded
/// open-loop load the simulator scored (`validate_requests` arrivals,
/// deadlines equal to the SLO).
pub fn run_autotune(
    set: ParamSet,
    target: SloTarget,
    workers: usize,
    requests: usize,
    validate: Option<usize>,
) -> Result<AutotuneOutcome, TfheError> {
    let mut rng = StdRng::seed_from_u64(0xA77);
    let params = set.params();
    let p = params.plaintext_modulus;
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = Arc::new(ServerKey::new(&ck, &mut rng));
    let lut = Arc::new(Lut::identity(params.poly_size, p));
    let ct = ck.encrypt(1 % p, &mut rng);

    // Calibrate: one warm-up wave, then a measured wave per core.
    let engine = morphling_tfhe::BootstrapEngine::builder()
        .workers(workers)
        .build(Arc::clone(&sk))?;
    let wave: Vec<_> = (0..workers.max(1) * 2).map(|_| ct.clone()).collect();
    let _ = engine.try_bootstrap_batch(&BatchRequest::shared(
        wave[..workers.max(1)].to_vec(),
        (*lut).clone(),
    ))?;
    engine.reset_stats();
    let _ = engine.try_bootstrap_batch(&BatchRequest::shared(wave, (*lut).clone()))?;
    let stats = engine.stats();
    drop(engine);
    let model = ServiceModel::from_engine_stats(&stats).ok_or(TfheError::InvalidServingConfig {
        field: "calibration",
        detail: "engine completed no bootstraps to calibrate from".into(),
    })?;

    // Search.
    let mut req = AutotuneRequest::new(target);
    req.max_workers = workers.max(1);
    req.requests = requests;
    let t0 = Instant::now();
    let report = autotune(&model, &req)?;
    let search_wall = t0.elapsed();

    // Validate: same seed, same rate, deadlines at the SLO, real stack.
    let (measured, agree) = match validate {
        Some(n) => {
            let engine = report.recommended.build_engine(sk)?;
            let dispatcher = Dispatcher::from_config(&report.recommended, engine)?;
            let spec = LoadSpec {
                rate_per_s: target.rate_per_s,
                requests: n,
                seed: req.seed,
                deadline: Some(target.p99),
            };
            let measured = replay_open_loop(&dispatcher, &spec, &ct, &lut)?;
            let agree = p99_agree(report.predicted.p99, measured.p99);
            (Some(measured), Some(agree))
        }
        None => (None, None),
    };
    Ok(AutotuneOutcome {
        set,
        stats,
        model,
        report,
        search_wall,
        measured,
        agree,
    })
}

/// The `autotune_config.json` payload: exactly the recommended
/// [`ServingConfig`](morphling_tfhe::ServingConfig)'s own serialization,
/// so `ServingConfig::from_json` (and `Dispatcher::from_config`) loads
/// it unchanged.
pub fn config_json(outcome: &AutotuneOutcome) -> String {
    outcome.report.recommended.to_json()
}

/// The `BENCH_autotune.json` payload CI validates: target, calibration,
/// recommendation, predicted profile, search size, and — when validation
/// ran — the measured profile plus the agreement verdict.
pub fn bench_json(outcome: &AutotuneOutcome) -> String {
    let r = &outcome.report;
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"target\": {{\"rate_per_s\": {}, \"p99_ms\": {}}},\n",
        r.target.rate_per_s,
        r.target.p99.as_secs_f64() * 1e3
    ));
    s.push_str(&format!(
        "  \"calibration\": {{\"set\": \"{:?}\", \"bootstrap_us\": {}, \"per_core_bs_s\": {}, \"workers\": {}}},\n",
        outcome.set,
        outcome.model.bootstrap_ns as f64 / 1e3,
        outcome.stats.bootstraps_per_core_sec(),
        outcome.stats.workers
    ));
    s.push_str(&format!("  \"slo_met\": {},\n", r.slo_met));
    s.push_str(&format!(
        "  \"recommended\": {{\"workers\": {}, \"max_batch_size\": {}, \"max_linger_us\": {}, \"queue_capacity\": {}, \"deadline_slack_us\": {}}},\n",
        r.recommended.workers,
        r.recommended.max_batch_size,
        r.recommended.max_linger.as_micros(),
        r.recommended.queue_capacity,
        r.recommended.deadline_slack.as_micros()
    ));
    s.push_str(&format!(
        "  \"predicted\": {{\"p50_ms\": {}, \"p99_ms\": {}, \"throughput_bs\": {}, \"mean_batch_size\": {}, \"shed\": {}, \"expired\": {}}},\n",
        r.predicted.p50.as_secs_f64() * 1e3,
        r.predicted.p99.as_secs_f64() * 1e3,
        r.predicted.throughput_bs,
        r.predicted.mean_batch_size,
        r.predicted.shed,
        r.predicted.expired
    ));
    s.push_str(&format!(
        "  \"search\": {{\"candidates\": {}, \"wall_ms\": {}}},\n",
        r.trajectory.len(),
        outcome.search_wall.as_secs_f64() * 1e3
    ));
    match (&outcome.measured, outcome.agree) {
        (Some(m), Some(agree)) => {
            s.push_str(&format!(
                "  \"measured\": {{\"p50_ms\": {}, \"p99_ms\": {}, \"completed\": {}, \"expired\": {}, \"rejected\": {}, \"failed\": {}, \"throughput_bs\": {}}},\n",
                m.p50.as_secs_f64() * 1e3,
                m.p99.as_secs_f64() * 1e3,
                m.completed,
                m.expired,
                m.rejected,
                m.failed,
                m.throughput_bs
            ));
            s.push_str(&format!("  \"p99_agree\": {agree}\n"));
        }
        _ => {
            s.push_str("  \"measured\": null,\n");
            s.push_str("  \"p99_agree\": null\n");
        }
    }
    s.push('}');
    s
}

/// The Chrome-trace payload for `report autotune --trace`: the search
/// trajectory as an `Autotune` track.
pub fn trace_json(outcome: &AutotuneOutcome) -> String {
    ExecutionTrace::from_autotune(&outcome.report).to_chrome_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_outcome(validate: bool) -> AutotuneOutcome {
        // A synthetic model keeps this test free of key generation; the
        // JSON writers only look at the outcome struct.
        let model = ServiceModel::new(Duration::from_millis(1));
        let target = SloTarget {
            rate_per_s: 100.0,
            p99: Duration::from_millis(30),
        };
        let report = autotune(&model, &AutotuneRequest::new(target)).unwrap();
        AutotuneOutcome {
            set: ParamSet::Test,
            stats: EngineStats {
                workers: 2,
                bootstraps: 10,
                busy: Duration::from_millis(10),
                ..EngineStats::default()
            },
            model,
            report,
            search_wall: Duration::from_millis(12),
            measured: validate.then(|| MeasuredProfile {
                p99: Duration::from_millis(4),
                completed: 64,
                ..MeasuredProfile::default()
            }),
            agree: validate.then_some(true),
        }
    }

    #[test]
    fn config_json_round_trips_through_serving_config() {
        let outcome = synthetic_outcome(false);
        let parsed = morphling_tfhe::ServingConfig::from_json(&config_json(&outcome)).unwrap();
        assert_eq!(parsed, outcome.report.recommended);
    }

    #[test]
    fn bench_json_has_the_ci_schema_fields() {
        for validated in [false, true] {
            let json = bench_json(&synthetic_outcome(validated));
            for key in [
                "\"target\"",
                "\"calibration\"",
                "\"slo_met\"",
                "\"recommended\"",
                "\"predicted\"",
                "\"search\"",
                "\"measured\"",
                "\"p99_agree\"",
            ] {
                assert!(json.contains(key), "missing {key} in {json}");
            }
            if validated {
                assert!(json.contains("\"p99_agree\": true"));
            } else {
                assert!(json.contains("\"p99_agree\": null"));
            }
        }
    }

    #[test]
    fn trace_json_renders_the_autotune_track() {
        let json = trace_json(&synthetic_outcome(false));
        assert!(json.contains("\"Autotune\""));
        assert!(json.contains("traceEvents"));
    }
}
