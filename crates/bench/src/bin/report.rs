//! Regenerate the paper's evaluation artifacts as text reports.
//!
//! ```text
//! cargo run -p morphling-bench --release --bin report            # everything
//! cargo run -p morphling-bench --release --bin report -- table5  # one artifact
//! cargo run -p morphling-bench --release --bin report -- table5 --measure-cpu
//! cargo run -p morphling-bench --release --bin report -- --trace trace.json
//! ```
//!
//! `--trace <out.json>` writes a Chrome-trace execution timeline (the
//! DeepCNN-20 workload scheduled through the SW → HW scheduler pair, plus
//! the simulator's per-stage spans) loadable in `chrome://tracing` or
//! Perfetto. It can be combined with artifact names; on its own it skips
//! the text artifacts.

use morphling_bench as reports;

const ARTIFACTS: &[&str] = &[
    "fig1", "fig3", "table4", "table5", "fig7a", "fig7b", "fig8a", "fig8b", "table6", "dataflow",
    "summary",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut measure_cpu = false;
    let mut trace_path: Option<String> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--measure-cpu" => measure_cpu = true,
            "--trace" => match it.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => {
                    eprintln!("error: --trace requires an output path");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag `{flag}`");
                std::process::exit(2);
            }
            target => targets.push(target),
        }
    }
    if let Some(unknown) = targets.iter().find(|t| !ARTIFACTS.contains(t)) {
        eprintln!("error: unknown artifact `{unknown}`; known artifacts: {ARTIFACTS:?}");
        std::process::exit(2);
    }
    let all = targets.is_empty() && trace_path.is_none();
    let want = |name: &str| all || targets.contains(&name);

    if want("fig1") {
        println!("{}", reports::fig1_report());
    }
    if want("fig3") {
        println!("{}", reports::fig3_report());
    }
    if want("table4") {
        println!("{}", reports::table4_report());
    }
    if want("table5") {
        println!("{}", reports::table5_report(measure_cpu));
    }
    if want("fig7a") {
        println!("{}", reports::fig7a_report());
    }
    if want("fig7b") {
        println!("{}", reports::fig7b_report());
    }
    if want("fig8a") {
        println!("{}", reports::fig8a_report());
    }
    if want("fig8b") {
        println!("{}", reports::fig8b_report());
    }
    if want("table6") {
        println!("{}", reports::table6_report());
    }
    if want("dataflow") {
        println!("{}", reports::dataflow_ablation_report());
    }
    if want("summary") {
        println!("{}", reports::summary_report());
    }
    if let Some(path) = trace_path {
        let json = reports::deepcnn_trace_json(20);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write trace to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote execution trace ({} bytes) to {path} — open in chrome://tracing or ui.perfetto.dev",
            json.len()
        );
    }
}
