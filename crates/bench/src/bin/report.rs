//! Regenerate the paper's evaluation artifacts as text reports.
//!
//! ```text
//! cargo run -p morphling-bench --release --bin report            # everything
//! cargo run -p morphling-bench --release --bin report -- table5  # one artifact
//! cargo run -p morphling-bench --release --bin report -- table5 --measure-cpu
//! ```

use morphling_bench as reports;

const ARTIFACTS: &[&str] = &[
    "fig1", "fig3", "table4", "table5", "fig7a", "fig7b", "fig8a", "fig8b", "table6", "dataflow",
    "summary",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let measure_cpu = args.iter().any(|a| a == "--measure-cpu");
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if let Some(unknown) = targets.iter().find(|t| !ARTIFACTS.contains(t)) {
        eprintln!("error: unknown artifact `{unknown}`; known artifacts: {ARTIFACTS:?}");
        std::process::exit(2);
    }
    let all = targets.is_empty();
    let want = |name: &str| all || targets.contains(&name);

    if want("fig1") {
        println!("{}", reports::fig1_report());
    }
    if want("fig3") {
        println!("{}", reports::fig3_report());
    }
    if want("table4") {
        println!("{}", reports::table4_report());
    }
    if want("table5") {
        println!("{}", reports::table5_report(measure_cpu));
    }
    if want("fig7a") {
        println!("{}", reports::fig7a_report());
    }
    if want("fig7b") {
        println!("{}", reports::fig7b_report());
    }
    if want("fig8a") {
        println!("{}", reports::fig8a_report());
    }
    if want("fig8b") {
        println!("{}", reports::fig8b_report());
    }
    if want("table6") {
        println!("{}", reports::table6_report());
    }
    if want("dataflow") {
        println!("{}", reports::dataflow_ablation_report());
    }
    if want("summary") {
        println!("{}", reports::summary_report());
    }
}
