//! Regenerate the paper's evaluation artifacts and run capacity planning.
//!
//! Structured subcommands:
//!
//! ```text
//! cargo run -p morphling-bench --release --bin report -- artifacts            # everything
//! cargo run -p morphling-bench --release --bin report -- artifacts table5 --measure-cpu
//! cargo run -p morphling-bench --release --bin report -- trace trace.json
//! cargo run -p morphling-bench --release --bin report -- autotune --rate 50 --p99 100
//! cargo run -p morphling-bench --release --bin report -- help
//! ```
//!
//! `autotune` calibrates a service model from a live engine run, searches
//! the serving-config space for the requested open-loop rate (req/s) and
//! p99 SLO (ms), writes the recommended `ServingConfig` to
//! `autotune_config.json` and the run summary to `BENCH_autotune.json`,
//! and with `--validate` replays the recommendation through the real
//! dispatcher to check the predicted/measured agreement bound
//! (DESIGN.md §15). `--trace <path>` additionally writes the search
//! trajectory as a Chrome-trace `autotune` track.
//!
//! The legacy positional invocations keep working: bare `report` renders
//! every artifact, `report table5 --measure-cpu` renders one, and
//! `report --trace trace.json` writes the scheduler timeline — exactly
//! as before the subcommands existed.

use std::time::Duration;

use morphling_bench as reports;
use morphling_tfhe::autotune::SloTarget;
use morphling_tfhe::ParamSet;

const ARTIFACTS: &[&str] = &[
    "fig1", "fig3", "table4", "table5", "fig7a", "fig7b", "fig8a", "fig8b", "table6", "dataflow",
    "summary",
];

fn usage() -> String {
    format!(
        "usage: report [artifacts] [{}] [--measure-cpu] [--trace <out.json>]\n\
         \x20      report trace <out.json>\n\
         \x20      report autotune --rate <req/s> --p99 <ms> [--workers <n>] [--requests <n>]\n\
         \x20             [--set <I|II|III|IV|TEST>] [--validate [<n>]] [--no-validate]\n\
         \x20             [--out <config.json>] [--bench-out <bench.json>] [--trace <out.json>]\n\
         \x20      report help",
        ARTIFACTS.join("|")
    )
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{}", usage());
    std::process::exit(2);
}

fn write_or_die(path: &str, payload: &str, what: &str) {
    if let Err(e) = std::fs::write(path, payload) {
        eprintln!("error: cannot write {what} to `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {what} ({} bytes) to {path}", payload.len());
}

/// The legacy artifact renderer: positional artifact names, optional
/// `--measure-cpu`, optional `--trace <path>` for the scheduler timeline.
fn run_artifacts(args: &[String]) {
    let mut measure_cpu = false;
    let mut trace_path: Option<String> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--measure-cpu" => measure_cpu = true,
            "--trace" => match it.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => fail("--trace requires an output path"),
            },
            flag if flag.starts_with("--") => fail(&format!("unknown flag `{flag}`")),
            target => targets.push(target),
        }
    }
    if let Some(unknown) = targets.iter().find(|t| !ARTIFACTS.contains(t)) {
        fail(&format!(
            "unknown artifact `{unknown}`; known artifacts: {ARTIFACTS:?}"
        ));
    }
    let all = targets.is_empty() && trace_path.is_none();
    let want = |name: &str| all || targets.contains(&name);

    if want("fig1") {
        println!("{}", reports::fig1_report());
    }
    if want("fig3") {
        println!("{}", reports::fig3_report());
    }
    if want("table4") {
        println!("{}", reports::table4_report());
    }
    if want("table5") {
        println!("{}", reports::table5_report(measure_cpu));
    }
    if want("fig7a") {
        println!("{}", reports::fig7a_report());
    }
    if want("fig7b") {
        println!("{}", reports::fig7b_report());
    }
    if want("fig8a") {
        println!("{}", reports::fig8a_report());
    }
    if want("fig8b") {
        println!("{}", reports::fig8b_report());
    }
    if want("table6") {
        println!("{}", reports::table6_report());
    }
    if want("dataflow") {
        println!("{}", reports::dataflow_ablation_report());
    }
    if want("summary") {
        println!("{}", reports::summary_report());
    }
    if let Some(path) = trace_path {
        write_or_die(&path, &reports::deepcnn_trace_json(20), "execution trace");
        eprintln!("open in chrome://tracing or ui.perfetto.dev");
    }
}

fn parse_set(name: &str) -> ParamSet {
    match name.to_ascii_uppercase().as_str() {
        "I" => ParamSet::I,
        "II" => ParamSet::II,
        "III" => ParamSet::III,
        "IV" => ParamSet::IV,
        "TEST" => ParamSet::Test,
        other => fail(&format!(
            "unknown parameter set `{other}`; use I, II, III, IV, or TEST"
        )),
    }
}

/// `report autotune --rate <req/s> --p99 <ms> [...]`.
fn run_autotune(args: &[String]) {
    let mut rate: Option<f64> = None;
    let mut p99_ms: Option<f64> = None;
    let mut workers = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(4)
        .min(8);
    let mut requests = 256usize;
    let mut set = ParamSet::Test;
    let mut validate: Option<usize> = Some(128);
    let mut out = String::from("autotune_config.json");
    let mut bench_out = String::from("BENCH_autotune.json");
    let mut trace_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| match it.next() {
            Some(v) => v.clone(),
            None => fail(&format!("{flag} requires a value")),
        };
        match arg.as_str() {
            "--rate" => {
                rate = Some(
                    value("--rate")
                        .parse()
                        .unwrap_or_else(|_| fail("--rate must be a number (requests per second)")),
                )
            }
            "--p99" => {
                p99_ms = Some(
                    value("--p99")
                        .parse()
                        .unwrap_or_else(|_| fail("--p99 must be a number (milliseconds)")),
                )
            }
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers must be a positive integer"))
            }
            "--requests" => {
                requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| fail("--requests must be a positive integer"))
            }
            "--set" => set = parse_set(&value("--set")),
            "--validate" => {
                // Optional count operand: `--validate 64`.
                validate = Some(match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        v.parse()
                            .unwrap_or_else(|_| fail("--validate count must be an integer"))
                    }
                    _ => 128,
                });
            }
            "--no-validate" => validate = None,
            "--out" => out = value("--out"),
            "--bench-out" => bench_out = value("--bench-out"),
            "--trace" => trace_path = Some(value("--trace")),
            flag => fail(&format!("unknown autotune flag `{flag}`")),
        }
    }
    let rate = rate.unwrap_or_else(|| fail("autotune requires --rate <req/s>"));
    let p99_ms = p99_ms.unwrap_or_else(|| fail("autotune requires --p99 <ms>"));
    if !(rate.is_finite() && rate > 0.0) {
        fail("--rate must be positive");
    }
    if !(p99_ms.is_finite() && p99_ms > 0.0) {
        fail("--p99 must be positive");
    }
    let target = SloTarget {
        rate_per_s: rate,
        p99: Duration::from_secs_f64(p99_ms / 1e3),
    };
    eprintln!(
        "autotune: calibrating at set {set:?} with {workers} workers, then searching for \
         {rate} req/s @ p99 <= {p99_ms} ms ..."
    );
    let outcome = match reports::autotune::run_autotune(set, target, workers, requests, validate) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: autotune failed: {e}");
            std::process::exit(1);
        }
    };
    let r = &outcome.report;
    eprintln!(
        "calibrated: {:.1} bootstraps/s per core ({:.2} ms each)",
        1e9 / outcome.model.bootstrap_ns as f64,
        outcome.model.bootstrap_ns as f64 / 1e6
    );
    eprintln!(
        "searched {} candidates in {:.0} ms: slo_met={} → workers={} batch={} linger={:?} \
         queue={} slack={:?} (predicted p99 {:.2} ms)",
        r.trajectory.len(),
        outcome.search_wall.as_secs_f64() * 1e3,
        r.slo_met,
        r.recommended.workers,
        r.recommended.max_batch_size,
        r.recommended.max_linger,
        r.recommended.queue_capacity,
        r.recommended.deadline_slack,
        r.predicted.p99.as_secs_f64() * 1e3
    );
    if let (Some(m), Some(agree)) = (&outcome.measured, outcome.agree) {
        eprintln!(
            "validated against the real dispatcher: measured p99 {:.2} ms \
             (completed {}, expired {}, rejected {}) — agreement {}",
            m.p99.as_secs_f64() * 1e3,
            m.completed,
            m.expired,
            m.rejected,
            if agree { "OK" } else { "VIOLATED" }
        );
    }
    write_or_die(
        &out,
        &reports::autotune::config_json(&outcome),
        "serving config",
    );
    write_or_die(
        &bench_out,
        &reports::autotune::bench_json(&outcome),
        "autotune summary",
    );
    if let Some(path) = trace_path {
        write_or_die(
            &path,
            &reports::autotune::trace_json(&outcome),
            "autotune search trace",
        );
    }
    if outcome.agree == Some(false) {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("help") | Some("--help") | Some("-h") => println!("{}", usage()),
        Some("artifacts") => run_artifacts(&args[1..]),
        Some("autotune") => run_autotune(&args[1..]),
        Some("trace") => match args.get(1) {
            Some(path) => write_or_die(path, &reports::deepcnn_trace_json(20), "execution trace"),
            None => fail("trace requires an output path"),
        },
        // Legacy positional form: artifact names and flags directly.
        _ => run_artifacts(&args),
    }
}
