//! Scheduler properties: the event-driven ready-queue scheduler is a
//! drop-in replacement for the original O(n²) list scheduler (identical
//! policy → identical timelines), and it scales to DeepCNN-100-sized
//! programs in interactive time.

use std::time::Instant;

use morphling_core::isa::{DmaOp, GroupId, Op, Program, VpuOp, XpuOp};
use morphling_core::sched::{HwScheduler, SwScheduler, Workload};
use morphling_core::ArchConfig;
use morphling_tfhe::ParamSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schedulers() -> (SwScheduler, HwScheduler) {
    let cfg = ArchConfig::morphling_default();
    (SwScheduler::new(cfg.clone()), HwScheduler::new(cfg))
}

/// A random dependency-correct program: arbitrary op mix, up to three
/// dependencies per instruction drawn from arbitrary earlier ids. This
/// exercises shapes the software scheduler never emits (e.g. DMA chains,
/// back-to-back blind rotations, fan-in onto one instruction).
fn random_program(seed: u64, len: usize) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prog = Program::new();
    for id in 0..len as u32 {
        let op = match rng.gen_range(0u32..8) {
            0 => Op::Xpu(XpuOp::BlindRotate {
                iterations: rng.gen_range(1u32..700),
            }),
            1 => Op::Vpu(VpuOp::ModSwitch),
            2 => Op::Vpu(VpuOp::SampleExtract),
            3 => Op::Vpu(VpuOp::KeySwitch),
            4 => Op::Vpu(VpuOp::PAlu {
                macs: rng.gen_range(1u64..100_000),
            }),
            5 => Op::Dma(DmaOp::LoadLwe),
            6 => Op::Dma(DmaOp::LoadKsk),
            _ => Op::Dma(DmaOp::StoreLwe),
        };
        let mut deps = Vec::new();
        if id > 0 {
            for _ in 0..rng.gen_range(0usize..=3) {
                let d = rng.gen_range(0u32..id);
                if !deps.contains(&d) {
                    deps.push(d);
                }
            }
            deps.sort_unstable();
        }
        prog.push(GroupId(id / 8), op, deps);
    }
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On software-scheduler-shaped programs (random level structure),
    /// the event-driven scheduler reproduces the reference list
    /// scheduler's timeline entry for entry — same starts, same ends,
    /// same units — hence identical makespans.
    #[test]
    fn event_driven_matches_reference_on_random_workloads(
        levels in prop::collection::vec((1u64..60, 0u64..50_000), 4),
        depth in 1usize..5,
    ) {
        let (sw, hw) = schedulers();
        let params = ParamSet::I.params();
        let w = Workload { levels: levels[..depth.min(levels.len())].to_vec() };
        let prog = sw.compile(&w, &params);
        let fast = hw.run(&prog, &params);
        let slow = hw.run_reference(&prog, &params);
        prop_assert_eq!(fast.makespan_cycles(), slow.makespan_cycles());
        prop_assert_eq!(fast.entries(), slow.entries());
    }

    /// On arbitrary random DAGs (shapes the software scheduler never
    /// emits), the two implementations still agree exactly.
    #[test]
    fn event_driven_matches_reference_on_random_dags(
        seed in any::<u64>(),
        len in 1usize..120,
    ) {
        let (_, hw) = schedulers();
        let params = ParamSet::I.params();
        let prog = random_program(seed, len);
        let fast = hw.run(&prog, &params);
        let slow = hw.run_reference(&prog, &params);
        prop_assert_eq!(fast.makespan_cycles(), slow.makespan_cycles());
        prop_assert_eq!(fast.entries(), slow.entries());
    }
}

/// Utilization stays in [0, 1] for every unit class on both scheduler
/// implementations — the DMA class in particular, whose two engines used
/// to sum busy cycles against a single makespan.
#[test]
fn utilization_is_normalized_per_engine() {
    let (sw, hw) = schedulers();
    let params = ParamSet::I.params();
    let prog = sw.compile(&Workload::independent(128).then(128, 0), &params);
    for tl in [hw.run(&prog, &params), hw.run_reference(&prog, &params)] {
        for unit in [
            morphling_core::isa::UnitClass::Xpu,
            morphling_core::isa::UnitClass::Vpu,
            morphling_core::isa::UnitClass::Dma,
        ] {
            let u = tl.utilization(unit);
            assert!((0.0..=1.0).contains(&u), "{unit}: {u}");
        }
    }
}

/// Scaling smoke test: a 1000-group (8000-instruction) program — the
/// DeepCNN-100 order of magnitude — schedules in well under a second.
/// The seed's O(n²) rescan with a fresh simulator run per blind rotation
/// took tens of seconds here.
#[test]
fn thousand_group_program_schedules_fast() {
    let (sw, hw) = schedulers();
    let params = ParamSet::I.params();
    let group = sw.group_size();
    let prog = sw.compile(&Workload::independent(1000 * group), &params);
    assert_eq!(prog.len(), 8000);
    let t0 = Instant::now();
    let tl = hw.run(&prog, &params);
    let elapsed = t0.elapsed();
    assert_eq!(tl.entries().len(), 8000);
    assert!(
        elapsed.as_secs_f64() < 1.0,
        "1000-group schedule took {elapsed:?}"
    );
}
