//! Chaos harness for the simulator's transient-fault model and the
//! fault-aware trace pipeline.
//!
//! The simulator's contract under faults: **re-cost, never crash**. An
//! injected outage stretches the blind-rotation window by a deterministic
//! penalty; a zero-rate plan reproduces the fault-free report bit for
//! bit. The last test drives the software engine under a seeded plan and
//! writes the merged Chrome trace to `CARGO_TARGET_TMPDIR` so CI can
//! archive and validate it.

use std::sync::Arc;
use std::time::Duration;

use morphling_core::faults::{FaultPlan, SimFaultKind, SimFaultPlan};
use morphling_core::sim::Simulator;
use morphling_core::trace::ExecutionTrace;
use morphling_core::ArchConfig;
use morphling_tfhe::{
    BatchRequest, BootstrapEngine, Bootstrapper, ClientKey, EngineHealth, Lut, ParamSet, ServerKey,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn zero_rate_plan_reproduces_the_fault_free_report_bit_for_bit() {
    let params = ParamSet::I.params();
    let clean = Simulator::new(ArchConfig::morphling_default()).bootstrap_batch(&params, 16);
    let chaos = Simulator::new(ArchConfig::morphling_default())
        .with_faults(SimFaultPlan::seeded(77))
        .bootstrap_batch(&params, 16);
    assert_eq!(chaos.fault_cycles, 0);
    assert!(chaos.fault_events.is_empty());
    assert_eq!(clean.latency_cycles(), chaos.latency_cycles());
    assert_eq!(clean.throughput_bs_per_s(), chaos.throughput_bs_per_s());
    assert_eq!(
        clean.to_trace().to_chrome_json(),
        chaos.to_trace().to_chrome_json(),
        "a zero-rate plan must not perturb the trace at all"
    );
}

#[test]
fn transient_outages_recost_instead_of_crashing() {
    let params = ParamSet::I.params();
    let plan = SimFaultPlan::seeded(42)
        .with_fft_outage(0.01, 500)
        .with_dma_stall(0.01, 200)
        .with_hbm_bitflip(0.005);
    let clean = Simulator::new(ArchConfig::morphling_default()).bootstrap_batch(&params, 16);
    let chaos = Simulator::new(ArchConfig::morphling_default())
        .with_faults(plan)
        .bootstrap_batch(&params, 16);

    assert!(!chaos.fault_events.is_empty(), "the plan must fire");
    let expected: u64 = chaos.fault_events.iter().map(|e| e.penalty_cycles).sum();
    assert_eq!(chaos.fault_cycles, expected);
    assert_eq!(
        chaos.latency_cycles(),
        clean.latency_cycles() + chaos.fault_cycles,
        "faults stretch the latency by exactly the charged penalties"
    );
    assert!(chaos.throughput_bs_per_s() < clean.throughput_bs_per_s());
    assert!(chaos.latency_seconds().is_finite());
    // All three kinds fire at these rates over ~630 iterations... verify
    // at least two distinct kinds to keep the assertion seed-robust.
    let kinds: std::collections::HashSet<_> = chaos.fault_events.iter().map(|e| e.kind).collect();
    assert!(kinds.len() >= 2, "kinds: {kinds:?}");
}

#[test]
fn fault_sampling_is_deterministic_per_seed() {
    let params = ParamSet::II.params();
    let plan = SimFaultPlan::seeded(7).with_fft_outage(0.02, 400);
    let run = |p: SimFaultPlan| {
        Simulator::new(ArchConfig::morphling_default())
            .with_faults(p)
            .bootstrap_batch(&params, 16)
    };
    let a = run(plan);
    let b = run(plan);
    assert_eq!(a.fault_events, b.fault_events);
    assert_eq!(a.latency_cycles(), b.latency_cycles());
    let c = run(SimFaultPlan::seeded(8).with_fft_outage(0.02, 400));
    assert_ne!(a.fault_events, c.fault_events, "seeds must diverge");
}

#[test]
fn fault_spans_land_in_the_trace_and_keep_the_makespan_invariant() {
    let params = ParamSet::I.params();
    let chaos = Simulator::new(ArchConfig::morphling_default())
        .with_faults(SimFaultPlan::seeded(3).with_dma_stall(0.01, 200))
        .bootstrap_batch(&params, 16);
    assert!(!chaos.fault_events.is_empty());
    let trace = chaos.to_trace();
    assert_eq!(
        trace.makespan_ticks(),
        chaos.latency_cycles(),
        "the trace must still cover exactly the latency chain"
    );
    let fault_spans: Vec<_> = trace.spans().iter().filter(|s| s.cat == "fault").collect();
    assert_eq!(fault_spans.len(), chaos.fault_events.len());
    assert!(fault_spans.iter().all(|s| s.name == "dma_stall"));
    let json = trace.to_chrome_json();
    assert!(json.contains("dma_stall"));
}

#[test]
fn hbm_bitflip_penalty_tracks_the_channel_bandwidth() {
    let params = ParamSet::I.params();
    let chaos = Simulator::new(ArchConfig::morphling_default())
        .with_faults(SimFaultPlan::seeded(5).with_hbm_bitflip(0.02))
        .bootstrap_batch(&params, 16);
    let refetch =
        morphling_core::sim::hbm::bitflip_refetch_cycles(&ArchConfig::morphling_default(), &params);
    assert!(refetch >= 1);
    for e in chaos
        .fault_events
        .iter()
        .filter(|e| e.kind == SimFaultKind::HbmBitFlip)
    {
        assert_eq!(e.penalty_cycles, refetch);
    }
}

/// Drive the software engine under a seeded fault plan, merge its job
/// spans and fault journal into one Chrome trace, and write it where CI
/// archives chaos artifacts. The JSON must parse (CI re-validates with a
/// real JSON parser; the balanced-brace check here catches structural
/// breakage locally).
#[test]
fn chaos_trace_roundtrips_to_disk() {
    let mut rng = StdRng::seed_from_u64(9100);
    let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
    let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
    let lut = Lut::identity(sk.params().poly_size, 4);
    let cts: Vec<_> = (0..8).map(|m| ck.encrypt(m % 4, &mut rng)).collect();

    let engine = BootstrapEngine::builder()
        .workers(2)
        .chunk_size(2)
        .respawn_budget(32)
        .max_retries(8)
        .retry_backoff(Duration::from_micros(100))
        .fault_plan(FaultPlan::seeded(0xABBA).with_worker_panic(0.25))
        .build(Arc::clone(&sk))
        .expect("spawn pool");
    let req = BatchRequest::shared(cts, lut);
    let out = engine.try_bootstrap_batch(&req).expect("survive");
    assert_eq!(out, sk.try_bootstrap_batch(&req).expect("reference"));
    assert!(matches!(
        engine.health(),
        EngineHealth::Healthy | EngineHealth::Degraded
    ));
    let events = engine.fault_events();
    assert!(!events.is_empty(), "seed 0xABBA at 25% must fire");

    let trace = ExecutionTrace::from_engine(&engine.job_spans(), &events, engine.workers());
    assert!(trace.spans().iter().any(|s| s.cat == "fault"));
    let json = trace.to_chrome_json();
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "chaos trace JSON must be structurally balanced");

    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("chaos_trace.json");
    std::fs::write(&path, &json).expect("write chaos trace");
    assert!(path.metadata().expect("stat").len() > 0);
}
