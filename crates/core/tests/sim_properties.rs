//! Property-based tests over the simulator: invariants that must hold for
//! *any* architecture configuration and parameter set, not just the
//! paper's defaults.

use morphling_core::sim::{IterProfile, Simulator};
use morphling_core::{ArchConfig, ReuseMode};
use morphling_tfhe::{ParamSet, ALL_PAPER_SETS};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ArchConfig> {
    (
        1usize..=8,                                                   // xpus
        1usize..=3,                                                   // fft units per xpu
        1usize..=6,                                                   // ifft units per xpu
        any::<bool>(),                                                // merge split
        prop::sample::select(vec![512usize, 1024, 2048, 4096, 8192]), // a1 KB
        0usize..3,                                                    // reuse mode index
    )
        .prop_map(|(xpus, ffts, iffts, ms, a1, reuse)| {
            let mut c = ArchConfig::morphling_default()
                .with_xpus(xpus)
                .with_merge_split(ms)
                .with_private_a1_kb(a1)
                .with_reuse(ReuseMode::ALL[reuse]);
            c.ffts_per_xpu = ffts;
            c.iffts_per_xpu = iffts;
            c
        })
}

fn arb_set() -> impl Strategy<Value = ParamSet> {
    prop::sample::select(ALL_PAPER_SETS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stall_is_at_least_one_and_latency_positive(cfg in arb_config(), set in arb_set()) {
        let r = Simulator::new(cfg).bootstrap_batch(&set.params(), 16);
        prop_assert!(r.stall >= 1.0);
        prop_assert!(r.latency_ms() > 0.0);
        prop_assert!(r.throughput_bs_per_s() > 0.0);
    }

    #[test]
    fn iteration_period_is_the_max_occupancy(cfg in arb_config(), set in arb_set()) {
        let p = IterProfile::compute(&cfg, &set.params());
        let m = p.iter_cycles();
        prop_assert!(m >= p.fft && m >= p.ifft && m >= p.vpe && m >= p.rotator && m >= p.decompose);
        prop_assert!(m == p.fft || m == p.ifft || m == p.vpe || m == p.rotator || m == p.decompose);
    }

    #[test]
    fn more_reuse_never_slows_down(cfg in arb_config(), set in arb_set()) {
        let params = set.params();
        let t = |reuse: ReuseMode| {
            Simulator::new(cfg.clone().with_reuse(reuse))
                .bootstrap_batch(&params, 16)
                .throughput_bs_per_s()
        };
        let no = t(ReuseMode::NoReuse);
        let input = t(ReuseMode::InputReuse);
        let io = t(ReuseMode::InputOutputReuse);
        prop_assert!(input >= no * 0.999, "input {input} < none {no}");
        prop_assert!(io >= input * 0.999, "io {io} < input {input}");
    }

    #[test]
    fn merge_split_never_slows_down(cfg in arb_config(), set in arb_set()) {
        let params = set.params();
        let on = Simulator::new(cfg.clone().with_merge_split(true))
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s();
        let off = Simulator::new(cfg.with_merge_split(false))
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s();
        prop_assert!(on >= off * 0.999, "ms on {on} < off {off}");
    }

    #[test]
    fn bigger_a1_never_slows_down(cfg in arb_config(), set in arb_set()) {
        let params = set.params();
        let small = Simulator::new(cfg.clone()).bootstrap_batch(&params, 16).throughput_bs_per_s();
        let big = Simulator::new(cfg.with_private_a1_kb(32768))
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s();
        prop_assert!(big >= small * 0.999, "big-A1 {big} < small-A1 {small}");
    }

    #[test]
    fn throughput_scales_within_one_multicast_group(set in arb_set()) {
        // Up to the multicast width, adding XPUs must not reduce total
        // throughput (per-XPU bandwidth pressure only grows beyond it).
        let params = set.params();
        let mut prev = 0.0;
        for x in 1..=4usize {
            let t = Simulator::new(ArchConfig::morphling_default().with_xpus(x))
                .bootstrap_batch(&params, 4 * x)
                .throughput_bs_per_s();
            prop_assert!(t >= prev * 0.999, "x={x}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn latency_breakdown_sums_to_one(cfg in arb_config(), set in arb_set()) {
        let r = Simulator::new(cfg).bootstrap_batch(&set.params(), 16);
        let (ms, br, se, ks) = r.latency_breakdown();
        prop_assert!((ms + br + se + ks - 1.0).abs() < 1e-9);
        prop_assert!(ms >= 0.0 && br > 0.0 && se >= 0.0 && ks >= 0.0);
    }

    #[test]
    fn batch_time_is_monotone_in_count(set in arb_set(), c1 in 1u64..500, c2 in 1u64..500) {
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        let sim = Simulator::new(ArchConfig::morphling_default());
        let params = set.params();
        let t_lo = sim.batch_time_seconds(&params, lo, 16);
        let t_hi = sim.batch_time_seconds(&params, hi, 16);
        prop_assert!(t_hi >= t_lo, "t({hi})={t_hi} < t({lo})={t_lo}");
    }
}
