//! End-to-end resilience trace: drive a breaker-guarded failover stack
//! behind the dispatcher, journal the retry/failover timeline, and write
//! the merged Chrome trace to `CARGO_TARGET_TMPDIR` so CI can archive
//! and validate it alongside the engine chaos trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use morphling_core::trace::ExecutionTrace;
use morphling_tfhe::{
    BatchRequest, Bootstrapper, ClientKey, Dispatcher, FailoverBootstrapper, Lut, LweCiphertext,
    ParamSet, ResilienceJournal, RetryPolicy, ServerKey, TfheError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fails its first `fail_first` calls with a retryable fault, then heals
/// and delegates to the sequential reference.
struct FlakyPrimary {
    inner: Arc<ServerKey>,
    fail_first: u64,
    calls: AtomicU64,
}

impl Bootstrapper for FlakyPrimary {
    fn try_bootstrap_batch(&self, req: &BatchRequest) -> Result<Vec<LweCiphertext>, TfheError> {
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_first {
            return Err(TfheError::WorkerPanicked { worker: 7 });
        }
        self.inner.try_bootstrap_batch(req)
    }
}

#[test]
fn resilience_trace_roundtrips_to_disk() {
    let mut rng = StdRng::seed_from_u64(0x7E51);
    let ck = ClientKey::generate(ParamSet::Test.params(), &mut rng);
    let sk = Arc::new(ServerKey::builder().build(&ck, &mut rng));
    let lut = Arc::new(Lut::identity(sk.params().poly_size, 4));

    let journal = Arc::new(ResilienceJournal::new());
    // The primary fails its first three calls: with a one-retry budget
    // the stack journals an in-place retry, then a failover to the
    // sequential tier — both event kinds are guaranteed on the timeline.
    let stack = Arc::new(
        FailoverBootstrapper::builder()
            .tier(
                "flaky",
                FlakyPrimary {
                    inner: Arc::clone(&sk),
                    fail_first: 3,
                    calls: AtomicU64::new(0),
                },
            )
            .tier("server", Arc::clone(&sk))
            .retry_policy(RetryPolicy::new(1).with_base_backoff(Duration::ZERO))
            .journal(Arc::clone(&journal))
            .build()
            .expect("two tiers"),
    );
    let dispatcher = Dispatcher::builder()
        .max_batch_size(4)
        .max_linger(Duration::from_millis(1))
        .resilience_journal(Arc::clone(&journal))
        .build(Arc::clone(&stack));

    let tickets: Vec<_> = (0..8u64)
        .map(|m| {
            let ct = ck.encrypt(m % 4, &mut rng);
            let expected = sk.programmable_bootstrap(&ct, &lut);
            let t = dispatcher
                .submit(ct, Arc::clone(&lut), None)
                .expect("submit");
            (expected, t)
        })
        .collect();
    for (expected, t) in tickets {
        assert_eq!(
            t.wait().expect("served despite the flaky primary"),
            expected,
            "degraded-mode output must be bit-identical"
        );
    }
    assert!(stack.retries() >= 1, "the flaky primary must be retried");
    assert!(stack.failovers() >= 1, "the stack must fail over");

    // Merge the dispatcher's batch spans with the resilience timeline.
    let mut trace = ExecutionTrace::from_resilience(&journal.events());
    trace.add_dispatch_spans(&dispatcher.spans());
    let names: Vec<_> = trace
        .spans()
        .iter()
        .filter(|s| s.cat == "resilience")
        .map(|s| s.name.clone())
        .collect();
    assert!(
        names.iter().any(|n| n == "retry"),
        "trace must carry retry spans: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "failover"),
        "trace must carry failover spans: {names:?}"
    );
    let json = trace.to_chrome_json();
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(
        depth, 0,
        "resilience trace JSON must be structurally balanced"
    );

    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("resilience_trace.json");
    std::fs::write(&path, &json).expect("write resilience trace");
    assert!(path.metadata().expect("stat").len() > 0);
}
