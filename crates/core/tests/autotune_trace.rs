//! The cycle-accurate simulator feeds the serving autotuner
//! (`SimReport::service_model`), and the autotuner's search trajectory
//! journals into the Chrome trace as an `Autotune` track.

use std::time::Duration;

use morphling_core::sim::Simulator;
use morphling_core::trace::ExecutionTrace;
use morphling_core::ArchConfig;
use morphling_tfhe::autotune::{autotune, AutotuneRequest, SloTarget};
use morphling_tfhe::ParamSet;

#[test]
fn sim_report_bridges_to_a_consistent_service_model() {
    let sim = Simulator::new(ArchConfig::morphling_default());
    let report = sim.bootstrap_batch(&ParamSet::III.params(), 1);
    let model = report.service_model();
    // The bridged per-bootstrap cost is the report's own latency.
    let latency_ns = (report.latency_seconds() * 1e9) as u64;
    assert!(model.bootstrap_ns.abs_diff(latency_ns) <= 1);
    // Run the accelerator's in-flight slots as "workers": capacity must
    // land near the simulator's steady-state throughput. The bridge
    // charges the one-time fill and serial VPU stages to every window,
    // so it reads a little low — never high — and stays within 25%.
    let fleet = Simulator::new(ArchConfig::morphling_default())
        .bootstrap_batch(&ParamSet::III.params(), report.cores);
    let bridged = fleet.service_model().capacity_bs(fleet.cores);
    let simulated = fleet.throughput_bs_per_s();
    assert!(
        bridged <= simulated * 1.01,
        "bridge must not promise more than the simulator: {bridged} vs {simulated}"
    );
    assert!(
        bridged >= simulated * 0.75,
        "bridge too conservative: {bridged} vs {simulated}"
    );
}

#[test]
fn autotune_on_the_simulated_accelerator_meets_a_real_slo() {
    // End-to-end capacity planning against simulated hardware: derive the
    // service model from the cycle-accurate report, then ask for a load
    // comfortably inside the accelerator's capacity.
    let sim = Simulator::new(ArchConfig::morphling_default());
    let report = sim.bootstrap_batch(&ParamSet::III.params(), 16);
    let model = report.service_model();
    let latency = Duration::from_secs_f64(report.latency_seconds());
    let mut req = AutotuneRequest::new(SloTarget {
        rate_per_s: model.capacity_bs(16) * 0.25,
        p99: latency * 20,
    });
    req.max_workers = 16;
    req.requests = 256;
    let tuned = autotune(&model, &req).unwrap();
    assert!(tuned.slo_met, "quarter-capacity load must be servable");
    assert!(tuned.predicted.p99 <= latency * 20);
    tuned.recommended.validate().unwrap();

    // The search trajectory renders as an `Autotune` track.
    let trace = ExecutionTrace::from_autotune(&tuned);
    assert_eq!(trace.spans().len(), tuned.trajectory.len());
    let json = trace.to_chrome_json();
    assert!(json.contains("\"Autotune\""));
    assert!(json.contains("autotune"));
    assert!(json.contains("predicted_p99_us"));
    // Both feasible and infeasible candidates are journaled.
    assert!(json.contains("\"autotune_infeasible\""));
    assert!(trace.spans().iter().any(|s| s.cat == "autotune"));
}

#[test]
fn autotune_track_merges_with_simulator_traces() {
    let sim = Simulator::new(ArchConfig::morphling_default());
    let report = sim.bootstrap_batch(&ParamSet::III.params(), 4);
    let mut trace = report.to_trace();
    let tuned = autotune(
        &report.service_model(),
        &AutotuneRequest::new(SloTarget {
            rate_per_s: 10.0,
            p99: Duration::from_secs(1),
        }),
    )
    .unwrap();
    let before = trace.spans().len();
    trace.add_autotune_trajectory(&tuned.trajectory);
    assert_eq!(trace.spans().len(), before + tuned.trajectory.len());
    let json = trace.to_chrome_json();
    assert!(json.contains("\"Simulator\"") && json.contains("\"Autotune\""));
}
