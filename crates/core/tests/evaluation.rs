//! Integration tests: the simulator reproduces the paper's evaluation
//! claims, and the hardware-structured dataflow computes correct results.

use morphling_core::reference::{TABLE_VI_CPU_SECONDS, TABLE_V_MORPHLING_PAPER};
use morphling_core::sim::{RotatorBuffer, Simulator};
use morphling_core::{ArchConfig, ReuseMode};
use morphling_tfhe::{ParamSet, TfheParams};

fn params_by_name(name: &str) -> TfheParams {
    match name {
        "I" => ParamSet::I.params(),
        "II" => ParamSet::II.params(),
        "III" => ParamSet::III.params(),
        "IV" => ParamSet::IV.params(),
        _ => panic!("unknown set {name}"),
    }
}

/// Every Morphling row of Table V reproduces within 20% on both latency
/// and throughput (most are within 3%).
#[test]
fn table_v_all_rows_within_tolerance() {
    let sim = Simulator::new(ArchConfig::morphling_default());
    for &(set, paper_lat, paper_tput) in TABLE_V_MORPHLING_PAPER {
        let r = sim.bootstrap_batch(&params_by_name(set), 16);
        let lat_err = (r.latency_ms() - paper_lat).abs() / paper_lat;
        let tput_err = (r.throughput_bs_per_s() - paper_tput).abs() / paper_tput;
        assert!(
            lat_err < 0.20,
            "set {set}: latency {} vs paper {paper_lat}",
            r.latency_ms()
        );
        assert!(
            tput_err < 0.20,
            "set {set}: throughput {} vs paper {paper_tput}",
            r.throughput_bs_per_s()
        );
    }
}

/// Fig 7-b: with identical compute resources, Input-Reuse beats No-Reuse
/// and Input+Output-Reuse beats both, with the gains growing as (k, l_b)
/// grows (sets A → B → C). Paper values: input+output reuse alone gives
/// 2.0× (A), 2.9× (B), 3.9× (C).
#[test]
fn fig7b_reuse_speedups_match_the_paper_shape() {
    let mut io_speedups = Vec::new();
    for set in [ParamSet::A, ParamSet::B, ParamSet::C] {
        let params = set.params();
        let tput = |reuse: ReuseMode| {
            let cfg = ArchConfig::morphling_default()
                .with_reuse(reuse)
                .with_merge_split(false);
            Simulator::new(cfg)
                .bootstrap_batch(&params, 16)
                .throughput_bs_per_s()
        };
        let no = tput(ReuseMode::NoReuse);
        let input = tput(ReuseMode::InputReuse);
        let io = tput(ReuseMode::InputOutputReuse);
        assert!(input > no, "{}: input {input} vs none {no}", params.name);
        // At (k,l_b)=(1,1) input and input+output reuse tie in our model
        // (forward FFTs bound both); strictly better from set B on.
        assert!(io >= input, "{}: io {io} vs input {input}", params.name);
        if params.glwe_dim > 1 {
            assert!(io > input, "{}: io should beat input", params.name);
        }
        io_speedups.push(io / no);
    }
    // Growing with (k, l_b): A < B < C.
    assert!(io_speedups[0] < io_speedups[1] && io_speedups[1] < io_speedups[2]);
    // Paper's reuse-only speedups: 2.0 / 2.9 / 3.9.
    for (ours, paper) in io_speedups.iter().zip([2.0, 2.9, 3.9]) {
        assert!(
            (ours / paper - 1.0).abs() < 0.15,
            "reuse speedup {ours} vs paper {paper}"
        );
    }
}

/// Fig 7-b's merge-split bar: enabling MS-FFT on top of input+output reuse
/// improves throughput (paper: 1.2–1.3×; ours is up to 2× because no other
/// microarchitectural limit bites in our model — see EXPERIMENTS.md).
#[test]
fn fig7b_merge_split_improves_throughput() {
    for set in [ParamSet::A, ParamSet::B, ParamSet::C] {
        let params = set.params();
        let with = Simulator::new(ArchConfig::morphling_default())
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s();
        let without = Simulator::new(ArchConfig::morphling_default().with_merge_split(false))
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s();
        let gain = with / without;
        assert!(
            (1.1..=2.1).contains(&gain),
            "{}: ms gain {gain}",
            params.name
        );
    }
}

/// The headline abstract claims, measured: ≥3000× over CPU, ≥100× over
/// GPU, ≥10× over the best prior accelerator.
#[test]
fn headline_speedups() {
    let sim = Simulator::new(ArchConfig::morphling_default());
    let ours_i = sim
        .bootstrap_batch(&ParamSet::I.params(), 16)
        .throughput_bs_per_s();
    let cpu = morphling_core::reference::baselines_for("I")
        .find(|r| r.platform == "CPU")
        .unwrap()
        .throughput_bs_s;
    let matcha = morphling_core::reference::baselines_for("I")
        .find(|r| r.system == "MATCHA")
        .unwrap()
        .throughput_bs_s;
    assert!(ours_i / cpu > 2000.0, "cpu speedup {}", ours_i / cpu);
    assert!(ours_i / matcha > 10.0, "asic speedup {}", ours_i / matcha);
    let ours_ii = sim
        .bootstrap_batch(&ParamSet::II.params(), 16)
        .throughput_bs_per_s();
    let nufhe = morphling_core::reference::baselines_for("II")
        .find(|r| r.system == "NuFHE")
        .unwrap()
        .throughput_bs_s;
    assert!(ours_ii / nufhe > 100.0, "gpu speedup {}", ours_ii / nufhe);
}

/// The double-pointer rotator drives a *functional* external product: the
/// hardware-structured dataflow (banked buffer reads → rotate-subtract →
/// decompose/FFT/MAC/IFFT) must produce exactly the same accumulator as
/// the reference TFHE engine.
#[test]
fn rotator_buffer_cosimulates_the_blind_rotation_step() {
    use morphling_tfhe::{ClientKey, ExternalProductEngine, GgswCiphertext, GlweCiphertext};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let params = ParamSet::Test.params();
    let mut rng = StdRng::seed_from_u64(99);
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let engine = ExternalProductEngine::new(&params);
    let msg = morphling_math::Polynomial::from_fn(params.poly_size, |j| {
        use morphling_math::TorusScalar;
        morphling_math::Torus32::encode((j % 4) as u64, 8)
    });
    let acc = GlweCiphertext::encrypt(&msg, ck.glwe_key(), params.glwe_noise_std, &mut rng);
    let bsk_i =
        GgswCiphertext::encrypt(1, ck.glwe_key(), &params, &mut rng).to_fourier(engine.fft());

    let a_tilde = 321i64;
    // Reference path: algebraic rotate-subtract.
    let reference = acc.add(&engine.external_product(&bsk_i, &acc.monomial_mul_minus_one(a_tilde)));

    // Hardware path: every component streamed out of a banked rotator
    // buffer via the two pointers.
    let lambda_comps: Vec<_> = acc
        .components()
        .map(|poly| RotatorBuffer::store(poly, 8).read_rotated_minus_orig(a_tilde))
        .collect();
    let lambda = GlweCiphertext::from_components(lambda_comps);
    let hardware = acc.add(&engine.external_product(&bsk_i, &lambda));

    assert_eq!(reference, hardware);
}

/// Fig 8-a shape: throughput is flat at/above the 4096 KiB Private-A1 and
/// degrades below (set A, as derived in DESIGN.md).
#[test]
fn fig8a_buffer_sweep_shape() {
    let params = ParamSet::A.params();
    let tput = |kb: usize| {
        Simulator::new(ArchConfig::morphling_default().with_private_a1_kb(kb))
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s()
    };
    let t1024 = tput(1024);
    let t2048 = tput(2048);
    let t4096 = tput(4096);
    let t8192 = tput(8192);
    let t16384 = tput(16384);
    assert!(t1024 < 0.7 * t4096);
    assert!(t2048 <= t4096 + 1.0);
    assert!((t8192 - t4096).abs() / t4096 < 0.05);
    assert!((t16384 - t8192).abs() / t8192 < 0.05);
}

/// Fig 8-b shape: throughput scales linearly 1→4 XPUs, then stops scaling
/// (memory-bound beyond the multicast width).
#[test]
fn fig8b_xpu_sweep_shape() {
    let params = ParamSet::A.params();
    let tput = |x: usize| {
        Simulator::new(ArchConfig::morphling_default().with_xpus(x))
            .bootstrap_batch(&params, 4 * x)
            .throughput_bs_per_s()
    };
    let t: Vec<f64> = (1..=8).map(tput).collect();
    // Linear region.
    assert!((t[1] / t[0] - 2.0).abs() < 0.25, "2/1 = {}", t[1] / t[0]);
    assert!((t[3] / t[1] - 2.0).abs() < 0.25, "4/2 = {}", t[3] / t[1]);
    // Saturation region: 8 XPUs gain far less than 2× over 4.
    assert!(t[7] < 1.5 * t[3], "8 XPUs {} vs 4 XPUs {}", t[7], t[3]);
}

/// Table VI sanity: the CPU reference times are present for all five
/// applications (used by the application benches).
#[test]
fn table_vi_reference_rows_present() {
    let names: Vec<&str> = TABLE_VI_CPU_SECONDS.iter().map(|&(n, _)| n).collect();
    assert_eq!(
        names,
        [
            "XG-Boost",
            "DeepCNN-20",
            "DeepCNN-50",
            "DeepCNN-100",
            "VGG-9"
        ]
    );
}
