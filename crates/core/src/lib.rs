//! The Morphling accelerator model — the paper's primary contribution.
//!
//! Morphling (HPCA 2024) is a throughput-maximized TFHE accelerator built
//! around one observation: domain transforms (FFT/IFFT) are up to 88% of
//! all bootstrapping operations, and a 2D systolic array of vector
//! processing elements (VPEs) can *reuse* transform-domain data so that far
//! fewer transforms are needed. This crate contains everything above the
//! cryptographic substrate:
//!
//! - [`ArchConfig`]: the architecture description (XPUs, VPE array
//!   geometry, FFT/IFFT units, buffer sizes, HBM) with the paper's default
//!   configuration ([`ArchConfig::morphling_default`]).
//! - [`ReuseMode`]: No-Reuse (MATCHA-like), Input-Reuse (Strix-like), and
//!   Input+Output-Reuse (Morphling) — §III, Fig 2.
//! - [`opcount`]: the analytical operation/memory model behind Fig 1 and
//!   Fig 3.
//! - [`isa`]: the custom XPU/VPU/DMA instructions of §V-E.
//! - [`sched`]: the SW-scheduler (batching/tiling of 64-ciphertext groups,
//!   Fig 6) and the HW-scheduler (dependency-driven dispatch).
//! - [`sim`]: the cycle-accurate simulator — XPU pipeline occupancy,
//!   VPU, buffers with the double-pointer rotator, HBM bandwidth
//!   contention — producing the latency/throughput numbers of Tables V–VI
//!   and Figs 7–8.
//! - [`trace`]: execution tracing — a cycle-stamped event journal with
//!   per-unit busy/stall counters and Chrome-trace JSON export, fed by
//!   the scheduler, the simulator, and the software bootstrap engine.
//! - [`faults`]: deterministic seeded fault injection — transient
//!   component outages (FFT down, DMA stall, HBM bit flip) that the
//!   simulator re-costs instead of crashing on, plus re-exports of the
//!   engine-side fault machinery.
//! - [`hwmodel`]: the 28 nm area/power model (Table IV).
//! - [`reference`]: published baseline numbers (CPU/GPU/FPGA/ASIC rows of
//!   Table V) with provenance.
//!
//! # Example: reproduce the headline throughput
//!
//! ```
//! use morphling_core::{ArchConfig, sim::Simulator};
//! use morphling_tfhe::ParamSet;
//!
//! let sim = Simulator::new(ArchConfig::morphling_default());
//! let report = sim.bootstrap_batch(&ParamSet::I.params(), 16);
//! // Paper, Table V: 0.11 ms latency, 147,615 bootstrappings/second.
//! assert!((report.latency_ms() - 0.11).abs() < 0.01);
//! assert!(report.throughput_bs_per_s() > 140_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod config;
pub mod faults;
pub mod hwmodel;
pub mod isa;
pub mod opcount;
pub mod reference;
mod reuse;
pub mod sched;
pub mod sim;
pub mod trace;

pub use config::{ArchConfig, Dataflow, HbmConfig, NocConfig};
pub use reuse::ReuseMode;
