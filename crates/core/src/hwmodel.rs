//! Area/power cost model at TSMC 28 nm (Table IV).
//!
//! **Substitution note** (DESIGN.md §1): the paper synthesizes RTL; we use
//! an analytical component model whose per-unit constants are calibrated to
//! the paper's published breakdown and which scales with [`ArchConfig`] —
//! so the default configuration reproduces Table IV and the ablation
//! configurations (more XPUs, bigger buffers) extrapolate consistently.

use std::fmt;

use crate::config::ArchConfig;

/// An area (mm²) / power (W) pair.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AreaPower {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
}

impl AreaPower {
    const fn new(area_mm2: f64, power_w: f64) -> Self {
        Self { area_mm2, power_w }
    }

    fn scale(self, k: f64) -> Self {
        Self {
            area_mm2: self.area_mm2 * k,
            power_w: self.power_w * k,
        }
    }

    fn add(self, other: Self) -> Self {
        Self {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_w: self.power_w + other.power_w,
        }
    }
}

impl fmt::Display for AreaPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} mm² / {:.2} W", self.area_mm2, self.power_w)
    }
}

// Per-unit constants calibrated to Table IV (28 nm, 1.2 GHz).
const DECOMP_UNIT: AreaPower = AreaPower::new(0.01 / 4.0, 0.008 / 4.0);
const FFT_UNIT: AreaPower = AreaPower::new(0.61, 0.455);
const COEF_BUFFER: AreaPower = AreaPower::new(0.03, 0.015);
const TWIDDLE_BUFFER: AreaPower = AreaPower::new(0.75, 0.37);
const VPE: AreaPower = AreaPower::new(4.71 / 16.0, 3.13 / 16.0);
const VPU_LANE_GROUP: AreaPower = AreaPower::new(0.22 / 4.0, 0.13 / 4.0);
const NOC_PER_XPU: AreaPower = AreaPower::new(0.21 / 4.0, 0.17 / 4.0);
const SRAM_PER_MB_A1: AreaPower = AreaPower::new(8.31 / 4.0, 4.27 / 4.0);
const SRAM_PER_MB_A2: AreaPower = AreaPower::new(8.10 / 4.0, 3.99 / 4.0);
const SRAM_PER_MB_B: AreaPower = AreaPower::new(4.05 / 2.0, 2.42 / 2.0);
const SRAM_PER_MB_SHARED: AreaPower = AreaPower::new(2.02, 0.99);
const HBM2E_PHY: AreaPower = AreaPower::new(14.90, 15.90);

/// One row of the cost breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct CostRow {
    /// Component label (matches Table IV's wording).
    pub component: String,
    /// Cost of this row.
    pub cost: AreaPower,
}

/// The full Table IV-style breakdown for one configuration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    /// Per-component rows *within one XPU* (Table IV's upper block).
    pub xpu_detail: Vec<CostRow>,
    /// Chip-level rows (the `n× XPU` aggregate, VPU, NoC, buffers, PHY).
    pub rows: Vec<CostRow>,
}

impl CostBreakdown {
    /// Total chip area and power (chip-level rows only; the XPU detail is
    /// already aggregated in the `n× XPU` row).
    pub fn total(&self) -> AreaPower {
        self.rows
            .iter()
            .fold(AreaPower::default(), |acc, r| acc.add(r.cost))
    }

    /// Find a row by (sub)label, searching the XPU detail first.
    pub fn row(&self, label: &str) -> Option<&CostRow> {
        self.xpu_detail
            .iter()
            .chain(self.rows.iter())
            .find(|r| r.component.contains(label))
    }
}

/// Evaluate the cost model for a configuration, producing the Table IV
/// rows. Per-XPU rows (decomposition, FFTs, buffers, VPE array) are
/// reported once for a single XPU plus an aggregate row, as the paper does.
pub fn evaluate(config: &ArchConfig) -> CostBreakdown {
    let mut xpu_detail = Vec::new();
    let mut rows = Vec::new();
    let push = |rows: &mut Vec<CostRow>, label: String, cost: AreaPower| {
        rows.push(CostRow {
            component: label,
            cost,
        });
    };

    let decomp = DECOMP_UNIT.scale(config.decomp_units_per_xpu as f64);
    let fft = FFT_UNIT.scale(config.ffts_per_xpu as f64);
    let coef = COEF_BUFFER.scale(config.ffts_per_xpu as f64);
    let vpe = VPE.scale(config.vpes_per_xpu() as f64);
    let ifft = FFT_UNIT.scale(config.iffts_per_xpu as f64);
    let xpu = decomp
        .add(fft)
        .add(coef)
        .add(TWIDDLE_BUFFER)
        .add(vpe)
        .add(ifft);

    push(
        &mut xpu_detail,
        format!("{}x Decomposition Unit", config.decomp_units_per_xpu),
        decomp,
    );
    push(
        &mut xpu_detail,
        format!("{}x FFT", config.ffts_per_xpu),
        fft,
    );
    push(
        &mut xpu_detail,
        format!("{}x Coef-Buffer", config.ffts_per_xpu),
        coef,
    );
    push(
        &mut xpu_detail,
        "Twiddle-Buffer".to_string(),
        TWIDDLE_BUFFER,
    );
    push(
        &mut xpu_detail,
        format!("{}x{} VPE Array", config.vpe_rows, config.vpe_cols),
        vpe,
    );
    push(
        &mut xpu_detail,
        format!("{}x IFFT", config.iffts_per_xpu),
        ifft,
    );
    push(
        &mut rows,
        format!("{}x XPU", config.xpus),
        xpu.scale(config.xpus as f64),
    );
    push(
        &mut rows,
        "VPU".to_string(),
        VPU_LANE_GROUP.scale(config.vpu_groups as f64),
    );
    push(
        &mut rows,
        "NoC".to_string(),
        NOC_PER_XPU.scale(config.xpus as f64),
    );
    let mb = |kb: usize| kb as f64 / 1024.0;
    push(
        &mut rows,
        format!("Private-A1 Buffer ({} KB)", config.private_a1_kb),
        SRAM_PER_MB_A1.scale(mb(config.private_a1_kb)),
    );
    push(
        &mut rows,
        format!("Private-A2 Buffer ({} KB)", config.private_a2_kb),
        SRAM_PER_MB_A2.scale(mb(config.private_a2_kb)),
    );
    push(
        &mut rows,
        format!("Private-B Buffer ({} KB)", config.private_b_kb),
        SRAM_PER_MB_B.scale(mb(config.private_b_kb)),
    );
    push(
        &mut rows,
        format!("Shared Buffer ({} KB)", config.shared_kb),
        SRAM_PER_MB_SHARED.scale(mb(config.shared_kb)),
    );
    push(&mut rows, "HBM2e PHY".to_string(), HBM2E_PHY);
    CostBreakdown { xpu_detail, rows }
}

/// The XPU-only subtotal (the paper's intermediate "XPU" row).
pub fn xpu_subtotal(config: &ArchConfig) -> AreaPower {
    let b = evaluate(config);
    let agg = b.row("x XPU").expect("aggregate row exists").cost;
    agg.scale(1.0 / config.xpus as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_total_matches_table_iv() {
        // Table IV: 74.79 mm², 53.00 W.
        let total = evaluate(&ArchConfig::morphling_default()).total();
        assert!(
            (total.area_mm2 - 74.79).abs() < 1.0,
            "area {}",
            total.area_mm2
        );
        assert!(
            (total.power_w - 53.00).abs() < 1.0,
            "power {}",
            total.power_w
        );
    }

    #[test]
    fn xpu_subtotal_matches_table_iv() {
        // Table IV: XPU = 9.23 mm², 6.23 W.
        let xpu = xpu_subtotal(&ArchConfig::morphling_default());
        assert!((xpu.area_mm2 - 9.23).abs() < 0.15, "area {}", xpu.area_mm2);
        assert!((xpu.power_w - 6.23).abs() < 0.15, "power {}", xpu.power_w);
    }

    #[test]
    fn component_rows_match_table_iv() {
        let b = evaluate(&ArchConfig::morphling_default());
        let check = |label: &str, area: f64, power: f64| {
            let r = b
                .row(label)
                .unwrap_or_else(|| panic!("missing row {label}"));
            assert!(
                (r.cost.area_mm2 - area).abs() < 0.05,
                "{label} area {}",
                r.cost.area_mm2
            );
            assert!(
                (r.cost.power_w - power).abs() < 0.05,
                "{label} power {}",
                r.cost.power_w
            );
        };
        check("FFT", 1.22, 0.91);
        check("VPE Array", 4.71, 3.13);
        check("IFFT", 2.45, 1.82);
        check("Private-A1", 8.31, 4.27);
        check("HBM2e", 14.90, 15.90);
    }

    #[test]
    fn cost_scales_with_configuration() {
        let base = evaluate(&ArchConfig::morphling_default()).total();
        let more = evaluate(&ArchConfig::morphling_default().with_xpus(8)).total();
        assert!(more.area_mm2 > base.area_mm2 + 30.0);
        let bigger_a1 = evaluate(&ArchConfig::morphling_default().with_private_a1_kb(8192)).total();
        assert!((bigger_a1.area_mm2 - base.area_mm2 - 8.31).abs() < 0.1);
    }

    #[test]
    fn display_formats() {
        let ap = AreaPower::new(1.5, 2.25);
        assert_eq!(ap.to_string(), "1.50 mm² / 2.25 W");
    }
}
