//! Analytical operation and memory model of TFHE bootstrapping — the data
//! behind the paper's Fig 1 (operation/memory breakdown) and Fig 3
//! (domain-transform reduction).
//!
//! "Operation" follows the paper's definition: a single (real)
//! multiplication. Domain-transform counts follow the CPU execution model
//! (no reuse: every polynomial product transforms its operand and its
//! result), which is how the paper's Fig 1 arrives at I/FFT ≈ 88%.

use morphling_tfhe::TfheParams;

use crate::reuse::ReuseMode;

/// Real multiplications in one `N`-point negacyclic transform (one
/// `N/2`-point complex FFT: `(N/4)·log2(N/2)` butterflies × 4).
pub fn mults_per_transform(poly_size: usize) -> u64 {
    let half = (poly_size / 2) as u64;
    (half / 2) * u64::from((poly_size as u64 / 2).trailing_zeros()) * 4
}

/// Operation counts (real multiplications) per bootstrapping stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpBreakdown {
    /// Forward/inverse transform multiplications during blind rotation.
    pub transform: u64,
    /// Pointwise (transform-domain) multiplications during blind rotation.
    pub pointwise: u64,
    /// Key-switching multiplications.
    pub key_switch: u64,
    /// Everything else: modulus switching, decomposition rounding, sample
    /// extraction (the paper lumps these as ≈1%).
    pub other: u64,
}

impl OpBreakdown {
    /// Total multiplications.
    pub fn total(&self) -> u64 {
        self.transform + self.pointwise + self.key_switch + self.other
    }

    /// Fraction contributed by domain transforms (the paper's "up to 88%").
    pub fn transform_fraction(&self) -> f64 {
        self.transform as f64 / self.total() as f64
    }

    /// Fraction contributed by key switching.
    pub fn key_switch_fraction(&self) -> f64 {
        self.key_switch as f64 / self.total() as f64
    }
}

/// Fig 1's operation breakdown for one bootstrap on a CPU (no
/// transform-domain reuse, BSK pre-transformed).
pub fn cpu_bootstrap_ops(params: &TfheParams) -> OpBreakdown {
    let n = params.lwe_dim as u64;
    let k1 = (params.glwe_dim + 1) as u64;
    let l_b = params.bsk_decomp.level() as u64;
    let big_n = params.poly_size as u64;
    let per_transform = mults_per_transform(params.poly_size);

    // CPU (Concrete-style) external product: every one of the (k+1)²·l_b
    // polynomial products transforms its input and its output — the
    // no-reuse count of §III.
    let transforms = ReuseMode::NoReuse.transforms_per_bootstrap(
        params.lwe_dim,
        params.glwe_dim,
        params.bsk_decomp.level(),
    );
    let transform = transforms * per_transform;

    // Pointwise complex products: (k+1)²·l_b polys × N/2 points × 4 real
    // mults, per iteration.
    let pointwise = n * k1 * k1 * l_b * (big_n / 2) * 4;

    // Key switch: kN·l_k scalar×LWE accumulations of (n+1) words each.
    let key_switch =
        (params.extracted_lwe_dim() as u64) * params.ksk_decomp.level() as u64 * (n + 1);

    // Modulus switch: one multiply per mask element + body; decomposition
    // and sample extraction are shifts/moves (counted once per coefficient
    // to be conservative, like the paper's ≈1% "others").
    let other = (n + 1) + n * k1 * l_b * big_n / 8;

    OpBreakdown {
        transform,
        pointwise,
        key_switch,
        other,
    }
}

/// Memory footprint (bytes) of the bootstrapping working set, Fig 1 middle
/// panel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Bootstrapping key (transform domain).
    pub bsk: u64,
    /// Key-switching key.
    pub ksk: u64,
    /// Accumulator + test polynomial + input/output LWE.
    pub working: u64,
}

/// Fig 1's memory breakdown.
pub fn bootstrap_memory(params: &TfheParams) -> MemoryBreakdown {
    MemoryBreakdown {
        bsk: params.bsk_total_bytes_fourier(),
        ksk: params.ksk_total_bytes(),
        working: 2 * params.acc_bytes()
            + (params.lwe_dim as u64 + 1) * 4
            + (params.extracted_lwe_dim() as u64 + 1) * 4,
    }
}

/// One row of the Fig 3 dataset: transform counts and reductions for a
/// parameter set mapped onto the VPE array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig3Row {
    /// `(k, l_b)` of the parameter set.
    pub k_lb: (usize, usize),
    /// Domain transforms per bootstrap without reuse.
    pub no_reuse: u64,
    /// With input reuse.
    pub input_reuse: u64,
    /// With input and output reuse.
    pub input_output_reuse: u64,
}

impl Fig3Row {
    /// Compute the row for one parameter set.
    pub fn for_params(params: &TfheParams) -> Self {
        let (n, k, l) = (params.lwe_dim, params.glwe_dim, params.bsk_decomp.level());
        Self {
            k_lb: (k, l),
            no_reuse: ReuseMode::NoReuse.transforms_per_bootstrap(n, k, l),
            input_reuse: ReuseMode::InputReuse.transforms_per_bootstrap(n, k, l),
            input_output_reuse: ReuseMode::InputOutputReuse.transforms_per_bootstrap(n, k, l),
        }
    }

    /// Reduction of input reuse vs no reuse (fraction).
    pub fn input_reduction(&self) -> f64 {
        1.0 - self.input_reuse as f64 / self.no_reuse as f64
    }

    /// Reduction of input+output reuse vs no reuse (fraction).
    pub fn input_output_reduction(&self) -> f64 {
        1.0 - self.input_output_reuse as f64 / self.no_reuse as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_tfhe::ParamSet;

    #[test]
    fn fig1_transform_share_matches_the_paper() {
        // Fig 1: I/FFT ≈ 88% of bootstrap operations at the 128-bit set.
        let ops = cpu_bootstrap_ops(&ParamSet::Fig1.params());
        let f = ops.transform_fraction();
        assert!((0.84..0.92).contains(&f), "transform fraction {f}");
    }

    #[test]
    fn fig1_key_switch_share_is_a_few_percent() {
        // Fig 1: key switching ≈ 1.9% of operations.
        let ops = cpu_bootstrap_ops(&ParamSet::Fig1.params());
        let f = ops.key_switch_fraction();
        assert!((0.005..0.05).contains(&f), "ks fraction {f}");
    }

    #[test]
    fn fig1_memory_matches_the_papers_order() {
        // Fig 1: BSK ≈ 101.4 MB, KSK ≈ 33.8 MB (±2× for format choices).
        let mem = bootstrap_memory(&ParamSet::Fig1.params());
        let bsk_mb = mem.bsk as f64 / 1048576.0;
        let ksk_mb = mem.ksk as f64 / 1048576.0;
        assert!((50.0..200.0).contains(&bsk_mb), "bsk {bsk_mb} MB");
        assert!((17.0..70.0).contains(&ksk_mb), "ksk {ksk_mb} MB");
    }

    #[test]
    fn fig3_rows_match_paper_values() {
        // Set C: 46752 no-reuse transforms; 37.5% / 83.3% reductions.
        let row = Fig3Row::for_params(&ParamSet::C.params());
        assert_eq!(row.no_reuse, 46_752);
        assert!((row.input_reduction() - 0.375).abs() < 1e-9);
        assert!((row.input_output_reduction() - 5.0 / 6.0).abs() < 1e-9);
        // Set A (k=1, l_b=1): 25% input-reuse reduction.
        let row = Fig3Row::for_params(&ParamSet::A.params());
        assert!((row.input_reduction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn transform_mult_count_formula() {
        // N=1024: 512-point FFT → 256·9·4 = 9216.
        assert_eq!(mults_per_transform(1024), 9216);
    }
}
