//! The architecture configuration of a Morphling instance (§IV-A, §VI-B).

use crate::reuse::ReuseMode;

/// Which operand stays resident in the VPE array (§IV-B).
///
/// The paper chooses ACC-output stationary: "The ACC input stationary and
/// the BSK stationary dataflows would require the partial sum of the ACC
/// output to be stored in Private-A1 … we have to store the
/// transform-domain data instead of polynomial data. This choice doubles
/// the memory requirement for the Private-A1 buffer." The simulator models
/// exactly that cost: non-output-stationary dataflows halve the achievable
/// stream batching for a given Private-A1 size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Partial sums stay in POLY-ACC-REG inside the VPEs (Morphling).
    #[default]
    OutputStationary,
    /// The ACC input stays; transform-domain partial sums spill to
    /// Private-A1 (2× bytes per ACC).
    InputStationary,
    /// The BSK stays; like input-stationary plus extra external-memory
    /// pressure from streaming more ciphertexts.
    BskStationary,
}

impl Dataflow {
    /// Bytes stored in Private-A1 per ACC ciphertext, relative to the
    /// coefficient-domain polynomial size (transform-domain data is 2×).
    pub fn acc_bytes_factor(&self) -> u64 {
        match self {
            Dataflow::OutputStationary => 1,
            Dataflow::InputStationary | Dataflow::BskStationary => 2,
        }
    }
}

/// External-memory (HBM2e) configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HbmConfig {
    /// Number of HBM channels (one HBM2e stack has 8).
    pub channels: usize,
    /// Moderate average bandwidth of the whole stack in GB/s (§VI-B: 310).
    pub total_gb_s: f64,
    /// Channels *prioritized* for the VPU's KSK traffic (§VI-B: 6). The
    /// remainder is prioritized for XPU BSK traffic; idle bandwidth is
    /// shared either way.
    pub vpu_priority_channels: usize,
}

impl HbmConfig {
    /// Bandwidth of a single channel in GB/s.
    pub fn channel_gb_s(&self) -> f64 {
        self.total_gb_s / self.channels as f64
    }

    /// Bandwidth of the XPU-prioritized channels in GB/s.
    pub fn xpu_priority_gb_s(&self) -> f64 {
        self.channel_gb_s() * (self.channels - self.vpu_priority_channels) as f64
    }
}

/// NoC configuration (§V-D). The Private-A2 → XPU connection is a
/// multicast tree of fixed width: XPUs beyond one multicast group need an
/// independent BSK stream, which is what caps XPU scaling in Fig 8-b.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NocConfig {
    /// Width of one BSK multicast group (§V-D: each Private-A2 bank
    /// multicasts to four XPUs).
    pub bsk_multicast_width: usize,
    /// Chip-wide NoC bandwidth in TB/s (§V-D: 4.8).
    pub bandwidth_tb_s: f64,
}

/// Full architecture description of one Morphling instance.
///
/// [`ArchConfig::morphling_default`] is the paper's configuration; every
/// field is public so the architectural-analysis benches (Fig 7-b, Fig 8)
/// can sweep it.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchConfig {
    /// Number of external product units (paper: 4).
    pub xpus: usize,
    /// VPE array rows per XPU — concurrent ciphertexts per XPU (paper: 4).
    pub vpe_rows: usize,
    /// VPE array columns per XPU (paper: 4; columns ≥ k+1 are idle or used
    /// for flexible mapping).
    pub vpe_cols: usize,
    /// Forward-FFT units per XPU (paper: 2).
    pub ffts_per_xpu: usize,
    /// Inverse-FFT units per XPU (paper: 4).
    pub iffts_per_xpu: usize,
    /// Decomposition units per XPU (paper: 4).
    pub decomp_units_per_xpu: usize,
    /// Datapath lanes: coefficients/complex points processed per cycle by
    /// each unit (paper: 8 — the 256-bit poly / 512-bit transform paths).
    pub lanes: usize,
    /// Whether the merge-split FFT is enabled (two real polynomials per
    /// FFT pass, §V-A.3).
    pub merge_split: bool,
    /// Transform-domain reuse mode of the VPE array.
    pub reuse: ReuseMode,
    /// VPU lane groups (paper: 4).
    pub vpu_groups: usize,
    /// Lanes per VPU group (paper: 32).
    pub vpu_lanes_per_group: usize,
    /// MAC operations per VPU lane per cycle (multiplier + adder per lane).
    pub vpu_macs_per_lane: usize,
    /// Private-A1 buffer capacity in KiB (paper: 4096, 16 banks).
    pub private_a1_kb: usize,
    /// Private-A2 buffer capacity in KiB (paper: 4096, 4 banks) — BSK
    /// double buffer / prefetcher.
    pub private_a2_kb: usize,
    /// Private-B buffer capacity in KiB (paper: 2048, 8 banks).
    pub private_b_kb: usize,
    /// Shared buffer capacity in KiB (paper: 1024, 4 banks).
    pub shared_kb: usize,
    /// Clock frequency in GHz (paper: 1.2).
    pub clock_ghz: f64,
    /// External memory.
    pub hbm: HbmConfig,
    /// Network-on-chip.
    pub noc: NocConfig,
    /// Maximum consecutive ACC streams batched for BSK reuse (§IV-C: up
    /// to 4; the realized depth also depends on Private-A1 capacity).
    pub max_stream_batch: usize,
    /// Which operand stays resident in the VPE array (§IV-B).
    pub dataflow: Dataflow,
}

impl ArchConfig {
    /// The paper's Morphling configuration (§VI-B).
    pub fn morphling_default() -> Self {
        Self {
            xpus: 4,
            vpe_rows: 4,
            vpe_cols: 4,
            ffts_per_xpu: 2,
            iffts_per_xpu: 4,
            decomp_units_per_xpu: 4,
            lanes: 8,
            merge_split: true,
            reuse: ReuseMode::InputOutputReuse,
            vpu_groups: 4,
            vpu_lanes_per_group: 32,
            vpu_macs_per_lane: 4,
            private_a1_kb: 4096,
            private_a2_kb: 4096,
            private_b_kb: 2048,
            shared_kb: 1024,
            clock_ghz: 1.2,
            hbm: HbmConfig {
                channels: 8,
                total_gb_s: 310.0,
                vpu_priority_channels: 6,
            },
            noc: NocConfig {
                bsk_multicast_width: 4,
                bandwidth_tb_s: 4.8,
            },
            max_stream_batch: 4,
            dataflow: Dataflow::default(),
        }
    }

    /// Same resources, different reuse mode (for the Fig 7-b comparison).
    #[must_use]
    pub fn with_reuse(mut self, reuse: ReuseMode) -> Self {
        self.reuse = reuse;
        self
    }

    /// Toggle the merge-split FFT.
    #[must_use]
    pub fn with_merge_split(mut self, enabled: bool) -> Self {
        self.merge_split = enabled;
        self
    }

    /// Change the XPU count (Fig 8-b sweep).
    #[must_use]
    pub fn with_xpus(mut self, xpus: usize) -> Self {
        assert!(xpus >= 1, "at least one XPU is required");
        self.xpus = xpus;
        self
    }

    /// Change the Private-A1 capacity (Fig 8-a sweep).
    #[must_use]
    pub fn with_private_a1_kb(mut self, kb: usize) -> Self {
        assert!(kb >= 1, "Private-A1 must be non-empty");
        self.private_a1_kb = kb;
        self
    }

    /// Change the VPE dataflow (§IV-B ablation).
    #[must_use]
    pub fn with_dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Total VPEs in one XPU.
    pub fn vpes_per_xpu(&self) -> usize {
        self.vpe_rows * self.vpe_cols
    }

    /// Ciphertexts in flight across the chip (`rows × XPUs`) — "16
    /// bootstrapping cores" in the default configuration.
    pub fn bootstrap_cores(&self) -> usize {
        self.vpe_rows * self.xpus
    }

    /// Total I/FFT units on the chip (paper: 24 = 4 × (2+4)).
    pub fn total_ifft_units(&self) -> usize {
        self.xpus * (self.ffts_per_xpu + self.iffts_per_xpu)
    }

    /// Cycles per second.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Number of independent BSK multicast groups ("clusters") the XPUs
    /// form; each cluster fetches its own BSK stream.
    pub fn bsk_clusters(&self) -> usize {
        self.xpus.div_ceil(self.noc.bsk_multicast_width)
    }

    /// Total VPU MAC throughput per cycle.
    pub fn vpu_macs_per_cycle(&self) -> u64 {
        (self.vpu_groups * self.vpu_lanes_per_group * self.vpu_macs_per_lane) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let c = ArchConfig::morphling_default();
        assert_eq!(c.bootstrap_cores(), 16);
        assert_eq!(c.total_ifft_units(), 24);
        assert_eq!(c.vpes_per_xpu(), 16);
        assert_eq!(c.bsk_clusters(), 1);
        assert_eq!(c.hbm.channels, 8);
        assert!((c.hbm.xpu_priority_gb_s() - 77.5).abs() < 1e-9);
    }

    #[test]
    fn cluster_count_follows_multicast_width() {
        let c = ArchConfig::morphling_default();
        assert_eq!(c.clone().with_xpus(5).bsk_clusters(), 2);
        assert_eq!(c.clone().with_xpus(8).bsk_clusters(), 2);
        assert_eq!(c.with_xpus(9).bsk_clusters(), 3);
    }

    #[test]
    fn builders_update_fields() {
        let c = ArchConfig::morphling_default()
            .with_reuse(crate::ReuseMode::NoReuse)
            .with_merge_split(false)
            .with_private_a1_kb(2048);
        assert_eq!(c.reuse, crate::ReuseMode::NoReuse);
        assert!(!c.merge_split);
        assert_eq!(c.private_a1_kb, 2048);
    }
}
