//! The custom instruction set of §V-E.
//!
//! Morphling exposes three instruction classes — XPU, VPU, and DMA — that
//! the SW-scheduler emits and the HW-scheduler dispatches. Instructions
//! carry explicit dependencies (the `VPU(MS) → XPU → VPU(SE) → VPU(KS)`
//! chain of Fig 6), which is what lets the hardware overlap independent
//! groups while serializing dependent stages.

use std::fmt;

/// Identifier of a scheduled instruction within one program.
pub type InstrId = u32;

/// A group of ciphertexts scheduled together (the paper groups every 64
/// LWE ciphertexts into four 16-ciphertext groups).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// XPU instructions: blind rotation over a group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XpuOp {
    /// Run `n` external-product iterations for every ciphertext slot of a
    /// group (Algorithm 1 lines 2–4).
    BlindRotate {
        /// Number of iterations (`n`, the LWE dimension).
        iterations: u32,
    },
}

/// VPU instructions: the memory-intensive stages plus programmable vector
/// arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VpuOp {
    /// Modulus switching of a group's LWE ciphertexts.
    ModSwitch,
    /// Sample extraction from the blind-rotation results.
    SampleExtract,
    /// Key switching back to the original key.
    KeySwitch,
    /// Programmable vector ALU work (leveled adds/multiplies between
    /// bootstraps), measured in MAC operations.
    PAlu {
        /// MAC operations to execute.
        macs: u64,
    },
}

/// DMA instructions: programmed data movement between HBM and the on-chip
/// buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaOp {
    /// Stream a window of bootstrapping-key iterations into Private-A2.
    LoadBskWindow {
        /// First blind-rotation iteration covered.
        from_iter: u32,
        /// One past the last iteration covered.
        to_iter: u32,
    },
    /// Load the key-switching key (or a tile of it) into Private-B.
    LoadKsk,
    /// Load a group's input LWE ciphertexts into Private-A1.
    LoadLwe,
    /// Store a group's output LWE ciphertexts back to HBM.
    StoreLwe,
}

/// One instruction: an operation bound to a ciphertext group, plus its
/// dependencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instruction {
    /// Unique id within the program.
    pub id: InstrId,
    /// The group this instruction operates on.
    pub group: GroupId,
    /// The operation.
    pub op: Op,
    /// Ids of instructions that must complete first.
    pub deps: Vec<InstrId>,
}

/// The union of the three instruction classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// An XPU instruction.
    Xpu(XpuOp),
    /// A VPU instruction.
    Vpu(VpuOp),
    /// A DMA instruction.
    Dma(DmaOp),
}

impl Op {
    /// Which execution unit class runs this op.
    pub fn unit(&self) -> UnitClass {
        match self {
            Op::Xpu(_) => UnitClass::Xpu,
            Op::Vpu(_) => UnitClass::Vpu,
            Op::Dma(_) => UnitClass::Dma,
        }
    }
}

/// Execution unit classes the HW-scheduler arbitrates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnitClass {
    /// External product units.
    Xpu,
    /// The vector processing unit.
    Vpu,
    /// DMA engines.
    Dma,
}

impl fmt::Display for UnitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitClass::Xpu => f.write_str("XPU"),
            UnitClass::Vpu => f.write_str("VPU"),
            UnitClass::Dma => f.write_str("DMA"),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Xpu(XpuOp::BlindRotate { iterations }) => {
                write!(f, "XPU.BR    iters={iterations}")
            }
            Op::Vpu(VpuOp::ModSwitch) => f.write_str("VPU.MS"),
            Op::Vpu(VpuOp::SampleExtract) => f.write_str("VPU.SE"),
            Op::Vpu(VpuOp::KeySwitch) => f.write_str("VPU.KS"),
            Op::Vpu(VpuOp::PAlu { macs }) => write!(f, "VPU.PALU  macs={macs}"),
            Op::Dma(DmaOp::LoadBskWindow { from_iter, to_iter }) => {
                write!(f, "DMA.LDBSK [{from_iter}..{to_iter})")
            }
            Op::Dma(DmaOp::LoadKsk) => f.write_str("DMA.LDKSK"),
            Op::Dma(DmaOp::LoadLwe) => f.write_str("DMA.LDLWE"),
            Op::Dma(DmaOp::StoreLwe) => f.write_str("DMA.STLWE"),
        }
    }
}

impl fmt::Display for Instruction {
    /// Assembly-style disassembly: `id: op @group [deps]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>4}: {:<24} @g{}",
            self.id,
            self.op.to_string(),
            self.group.0
        )?;
        if !self.deps.is_empty() {
            write!(f, "  waits {:?}", self.deps)?;
        }
        Ok(())
    }
}

/// A complete instruction program for one workload.
#[derive(Clone, Debug, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an instruction, returning its id.
    pub fn push(&mut self, group: GroupId, op: Op, deps: Vec<InstrId>) -> InstrId {
        let id = self.instructions.len() as InstrId;
        for &d in &deps {
            assert!(d < id, "dependency {d} does not precede instruction {id}");
        }
        self.instructions.push(Instruction {
            id,
            group,
            op,
            deps,
        });
        id
    }

    /// All instructions in issue order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Instruction count per unit class: `(xpu, vpu, dma)`.
    pub fn unit_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for i in &self.instructions {
            match i.op.unit() {
                UnitClass::Xpu => counts.0 += 1,
                UnitClass::Vpu => counts.1 += 1,
                UnitClass::Dma => counts.2 += 1,
            }
        }
        counts
    }
}

impl fmt::Display for Program {
    /// Full disassembly listing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.instructions {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_assigns_sequential_ids() {
        let mut p = Program::new();
        let a = p.push(GroupId(0), Op::Vpu(VpuOp::ModSwitch), vec![]);
        let b = p.push(
            GroupId(0),
            Op::Xpu(XpuOp::BlindRotate { iterations: 500 }),
            vec![a],
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.instructions()[1].deps, vec![0]);
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn forward_dependencies_are_rejected() {
        let mut p = Program::new();
        p.push(GroupId(0), Op::Vpu(VpuOp::ModSwitch), vec![5]);
    }

    #[test]
    fn op_unit_classes() {
        assert_eq!(
            Op::Xpu(XpuOp::BlindRotate { iterations: 1 }).unit(),
            UnitClass::Xpu
        );
        assert_eq!(Op::Vpu(VpuOp::KeySwitch).unit(), UnitClass::Vpu);
        assert_eq!(Op::Dma(DmaOp::LoadKsk).unit(), UnitClass::Dma);
        assert_eq!(UnitClass::Dma.to_string(), "DMA");
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let mut p = Program::new();
        let ms = p.push(GroupId(0), Op::Vpu(VpuOp::ModSwitch), vec![]);
        p.push(
            GroupId(0),
            Op::Xpu(XpuOp::BlindRotate { iterations: 500 }),
            vec![ms],
        );
        let listing = p.to_string();
        assert!(listing.contains("VPU.MS"));
        assert!(listing.contains("XPU.BR    iters=500"));
        assert!(listing.contains("waits [0]"));
        assert_eq!(p.unit_counts(), (1, 1, 0));
    }
}
