//! The software scheduler (Fig 6, left side): application-level batching
//! and tiling into an instruction stream.

use morphling_tfhe::TfheParams;

use crate::config::ArchConfig;
use crate::isa::{DmaOp, GroupId, Op, Program, VpuOp, XpuOp};

/// An application's demand, expressed in scheduling "levels": all
/// bootstraps within a level are independent; level `i+1` depends on level
/// `i` (e.g. neural-network layers). Leveled P-ALU work (MACs) can be
/// attached per level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Workload {
    /// `(bootstraps, palu_macs)` per dependency level.
    pub levels: Vec<(u64, u64)>,
}

impl Workload {
    /// A single level of `count` independent bootstraps.
    pub fn independent(count: u64) -> Self {
        Self {
            levels: vec![(count, 0)],
        }
    }

    /// Append a level.
    pub fn then(mut self, bootstraps: u64, palu_macs: u64) -> Self {
        self.levels.push((bootstraps, palu_macs));
        self
    }

    /// Total bootstraps across all levels.
    pub fn total_bootstraps(&self) -> u64 {
        self.levels.iter().map(|&(b, _)| b).sum()
    }
}

/// The software scheduler: turns a [`Workload`] into a tiled, batched
/// [`Program`].
#[derive(Clone, Debug)]
pub struct SwScheduler {
    config: ArchConfig,
}

impl SwScheduler {
    /// Create a scheduler for one architecture.
    pub fn new(config: ArchConfig) -> Self {
        Self { config }
    }

    /// The group size: ciphertexts scheduled together per instruction
    /// (one per XPU set of rows — 16 in the default configuration; four
    /// groups make the 64-ciphertext super-group of §V-E).
    pub fn group_size(&self) -> u64 {
        self.config.bootstrap_cores() as u64
    }

    /// Compile a workload into an instruction program. Each group gets the
    /// Fig 6 chain `DMA(LWE) → VPU(MS) → XPU(BR) → VPU(SE) → VPU(KS) →
    /// DMA(out)`, with BSK window and KSK loads scheduled once per level,
    /// and levels serialized by dependencies.
    pub fn compile(&self, workload: &Workload, params: &TfheParams) -> Program {
        let mut prog = Program::new();
        let mut group_no = 0u32;
        let mut prev_level_last: Vec<u32> = Vec::new();
        for &(bootstraps, palu_macs) in &workload.levels {
            let mut this_level: Vec<u32> = Vec::new();
            let groups = bootstraps.div_ceil(self.group_size().max(1));
            for _ in 0..groups {
                let g = GroupId(group_no);
                group_no += 1;
                // Groups within a level are independent: each group's
                // LoadLwe waits only on the previous level's outputs.
                // (An earlier revision also pushed this group's StoreLwe
                // into a clone of that list after use — a dead store that
                // suggested cross-group chaining which never existed.)
                let load = prog.push(g, Op::Dma(DmaOp::LoadLwe), prev_level_last.clone());
                let bsk = prog.push(
                    g,
                    Op::Dma(DmaOp::LoadBskWindow {
                        from_iter: 0,
                        to_iter: params.lwe_dim as u32,
                    }),
                    vec![],
                );
                let ms = prog.push(g, Op::Vpu(VpuOp::ModSwitch), vec![load]);
                let br = prog.push(
                    g,
                    Op::Xpu(XpuOp::BlindRotate {
                        iterations: params.lwe_dim as u32,
                    }),
                    vec![ms, bsk],
                );
                let se = prog.push(g, Op::Vpu(VpuOp::SampleExtract), vec![br]);
                let ksk = prog.push(g, Op::Dma(DmaOp::LoadKsk), vec![]);
                let ks = prog.push(g, Op::Vpu(VpuOp::KeySwitch), vec![se, ksk]);
                let store = prog.push(g, Op::Dma(DmaOp::StoreLwe), vec![ks]);
                this_level.push(store);
            }
            if palu_macs > 0 {
                let g = GroupId(group_no);
                group_no += 1;
                let palu = prog.push(
                    g,
                    Op::Vpu(VpuOp::PAlu { macs: palu_macs }),
                    this_level.clone(),
                );
                this_level.push(palu);
            }
            prev_level_last = this_level;
        }
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_tfhe::ParamSet;

    #[test]
    fn groups_of_sixteen_with_dependency_chain() {
        let sched = SwScheduler::new(ArchConfig::morphling_default());
        assert_eq!(sched.group_size(), 16);
        let prog = sched.compile(&Workload::independent(64), &ParamSet::I.params());
        // 4 groups × 8 instructions.
        assert_eq!(prog.len(), 32);
        // The BR of each group depends on its MS.
        let br = &prog.instructions()[3];
        assert!(matches!(br.op, Op::Xpu(_)));
        assert!(br.deps.contains(&2));
    }

    #[test]
    fn levels_serialize() {
        let sched = SwScheduler::new(ArchConfig::morphling_default());
        let w = Workload::independent(16).then(16, 1000);
        let prog = sched.compile(&w, &ParamSet::I.params());
        // The second level's LoadLwe depends on the first level's outputs.
        let second_load = prog
            .instructions()
            .iter()
            .filter(|i| matches!(i.op, Op::Dma(DmaOp::LoadLwe)))
            .nth(1)
            .unwrap();
        assert!(!second_load.deps.is_empty());
    }

    #[test]
    fn groups_within_a_level_do_not_chain_on_each_other() {
        // Regression for the dead `deps.push(store)`: within one level,
        // group g+1's LoadLwe must depend only on the *previous level's*
        // stores — never on sibling groups of its own level.
        let sched = SwScheduler::new(ArchConfig::morphling_default());
        let prog = sched.compile(
            &Workload::independent(64).then(64, 0),
            &ParamSet::I.params(),
        );
        let stores_of_level: Vec<Vec<u32>> = (0..2)
            .map(|level| {
                prog.instructions()
                    .iter()
                    .filter(|i| matches!(i.op, Op::Dma(DmaOp::StoreLwe)))
                    .skip(level * 4)
                    .take(4)
                    .map(|i| i.id)
                    .collect()
            })
            .collect();
        let loads: Vec<_> = prog
            .instructions()
            .iter()
            .filter(|i| matches!(i.op, Op::Dma(DmaOp::LoadLwe)))
            .collect();
        assert_eq!(loads.len(), 8);
        for load in &loads[..4] {
            assert!(load.deps.is_empty(), "level-0 load {load} has deps");
        }
        for load in &loads[4..] {
            assert_eq!(
                load.deps, stores_of_level[0],
                "level-1 load {load} must wait on exactly the level-0 stores"
            );
            for sibling_store in &stores_of_level[1] {
                assert!(!load.deps.contains(sibling_store));
            }
        }
    }

    #[test]
    fn workload_builders() {
        let w = Workload::independent(10).then(5, 0);
        assert_eq!(w.total_bootstraps(), 15);
        assert_eq!(w.levels.len(), 2);
    }
}
