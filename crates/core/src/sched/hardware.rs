//! The hardware scheduler (Fig 6, right side): a scoreboard that
//! dispatches the instruction stream onto the simulated units as their
//! dependencies resolve, overlapping independent groups (XPU compute vs
//! VPU post-processing vs DMA transfers).
//!
//! [`HwScheduler::run`] is an event-driven ready-queue scheduler: each
//! unit class keeps a binary heap of ready instructions, per-instruction
//! durations come from a memoized [`SimReport`], and every dispatch is
//! O(log n) — O(n log n) overall, against the O(n²) rescan of the
//! original list scheduler (kept as [`HwScheduler::run_reference`] for
//! differential testing and the comparison bench). Both produce the same
//! policy: among ready instructions, issue the one with the earliest
//! possible start, breaking ties by instruction id.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use morphling_tfhe::TfheParams;

use crate::config::ArchConfig;
use crate::isa::{DmaOp, InstrId, Op, Program, UnitClass, VpuOp, XpuOp};
use crate::sim::vpu::VpuCost;
use crate::sim::{SimReport, Simulator};
use crate::trace::{ExecutionTrace, StallCause, UnitCounters};

/// Number of parallel DMA engines the scoreboard arbitrates.
pub const DMA_ENGINES: usize = 2;

/// Parallel engines behind one unit class (one XPU complex slot, one
/// full-rate VPU slot, [`DMA_ENGINES`] DMA engines).
pub fn unit_engines(unit: UnitClass) -> u64 {
    match unit {
        UnitClass::Xpu | UnitClass::Vpu => 1,
        UnitClass::Dma => DMA_ENGINES as u64,
    }
}

/// One scheduled instruction occurrence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scheduled {
    /// Instruction id.
    pub id: InstrId,
    /// Start cycle.
    pub start: u64,
    /// End cycle.
    pub end: u64,
    /// Unit that executed it.
    pub unit: UnitClass,
}

/// The execution timeline produced by the hardware scheduler.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    entries: Vec<Scheduled>,
}

impl Timeline {
    /// All scheduled instructions in issue order.
    pub fn entries(&self) -> &[Scheduled] {
        &self.entries
    }

    /// Total cycles from first issue to last completion.
    pub fn makespan_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.end).max().unwrap_or(0)
    }

    /// Busy cycles of one unit class (sum of instruction durations,
    /// across all of that class's engines).
    pub fn busy_cycles(&self, unit: UnitClass) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.unit == unit)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Utilization of a unit class over the makespan, normalized by the
    /// class's engine count (two DMA engines can log up to two busy
    /// cycles per makespan cycle, so the result stays ≤ 1).
    pub fn utilization(&self, unit: UnitClass) -> f64 {
        let span = self.makespan_cycles();
        if span == 0 {
            0.0
        } else {
            self.busy_cycles(unit) as f64 / (span * unit_engines(unit)) as f64
        }
    }
}

/// Cache key for the memoized per-`(params, group_size)` simulator
/// report. Name alone is not enough (callers may construct custom
/// parameter sets), so the fields that drive the report are included.
type ReportKey = (&'static str, usize, usize, usize, u64);

fn report_key(params: &TfheParams, group_size: u64) -> ReportKey {
    (
        params.name,
        params.poly_size,
        params.lwe_dim,
        params.glwe_dim,
        group_size,
    )
}

/// The hardware scheduler / scoreboard.
#[derive(Clone, Debug)]
pub struct HwScheduler {
    config: ArchConfig,
    /// Memoized `Simulator::bootstrap_batch` reports: the analytical
    /// simulator is re-entered once per `(params, group_size)`, not once
    /// per `BlindRotate` instruction.
    report_cache: RefCell<HashMap<ReportKey, SimReport>>,
}

/// Ready-queue state of one unit class: instructions whose dependencies
/// have all been scheduled, split by whether the unit is already free for
/// them. `queued` is keyed by `(ready_cycle, id)`; once a ready cycle is
/// at or below the unit's free time the instruction migrates to
/// `runnable`, keyed by id alone (everything there would start at the
/// same cycle, so program order breaks the tie — exactly the reference
/// policy).
#[derive(Default)]
struct UnitQueue {
    queued: BinaryHeap<Reverse<(u64, InstrId)>>,
    runnable: BinaryHeap<Reverse<InstrId>>,
}

impl UnitQueue {
    fn push(&mut self, ready: u64, id: InstrId) {
        self.queued.push(Reverse((ready, id)));
    }

    /// Earliest `(start, id)` this unit could issue given its free time,
    /// without removing it.
    fn peek(&mut self, unit_free: u64) -> Option<(u64, InstrId)> {
        while let Some(&Reverse((ready, id))) = self.queued.peek() {
            if ready <= unit_free {
                self.queued.pop();
                self.runnable.push(Reverse(id));
            } else {
                break;
            }
        }
        if let Some(&Reverse(id)) = self.runnable.peek() {
            Some((unit_free, id))
        } else {
            self.queued.peek().map(|&Reverse((ready, id))| (ready, id))
        }
    }

    fn pop(&mut self, id: InstrId) {
        if let Some(&Reverse(front)) = self.runnable.peek() {
            if front == id {
                self.runnable.pop();
                return;
            }
        }
        let popped = self.queued.pop();
        debug_assert_eq!(popped.map(|Reverse((_, i))| i), Some(id));
    }
}

impl HwScheduler {
    /// Create a scheduler for one architecture.
    pub fn new(config: ArchConfig) -> Self {
        Self {
            config,
            report_cache: RefCell::new(HashMap::new()),
        }
    }

    /// The memoized simulator report for `(params, group_size)`.
    fn sim_report(&self, params: &TfheParams, group_size: u64) -> SimReport {
        let key = report_key(params, group_size);
        if let Some(report) = self.report_cache.borrow().get(&key) {
            return report.clone();
        }
        let report =
            Simulator::new(self.config.clone()).bootstrap_batch(params, group_size as usize);
        self.report_cache.borrow_mut().insert(key, report.clone());
        report
    }

    /// Duration (cycles) of one instruction on its unit, for a group of
    /// `group_size` ciphertexts under `params`. `report` supplies the
    /// stalled iteration period for blind rotations, making this O(1)
    /// per instruction; `None` re-runs the analytical simulator inline
    /// (the seed behavior, kept for [`run_reference`](Self::run_reference)).
    fn duration_with(
        &self,
        op: &Op,
        params: &TfheParams,
        group_size: u64,
        report: Option<&SimReport>,
    ) -> u64 {
        let cfg = &self.config;
        let vpu = VpuCost::compute(params);
        match op {
            Op::Xpu(XpuOp::BlindRotate { iterations }) => {
                let fresh;
                let report = match report {
                    Some(r) => r,
                    None => {
                        fresh = Simulator::new(cfg.clone())
                            .bootstrap_batch(params, group_size as usize);
                        &fresh
                    }
                };
                (u64::from(*iterations) as f64 * report.iter_cycles as f64 * report.stall) as u64
            }
            Op::Vpu(VpuOp::ModSwitch) => (group_size * vpu.mod_switch_macs)
                .div_ceil(cfg.vpu_macs_per_cycle())
                .max(1),
            Op::Vpu(VpuOp::SampleExtract) => (group_size * vpu.sample_extract_words)
                .div_ceil((cfg.lanes * cfg.vpu_groups) as u64)
                .max(1),
            Op::Vpu(VpuOp::KeySwitch) => (group_size * vpu.key_switch_macs)
                .div_ceil(cfg.vpu_macs_per_cycle())
                .max(1),
            Op::Vpu(VpuOp::PAlu { macs }) => macs.div_ceil(cfg.vpu_macs_per_cycle()).max(1),
            Op::Dma(DmaOp::LoadBskWindow { .. }) => {
                // Prefetch head start: fill the double-buffered A2 window.
                self.dma_cycles(
                    2 * params.bsk_iter_bytes_fourier(),
                    cfg.hbm.xpu_priority_gb_s(),
                )
            }
            Op::Dma(DmaOp::LoadKsk) => {
                // One KSK tile per group; the full key is reused across the
                // max_stream_batch × groups of a 64-ciphertext super-group.
                let reuse = (cfg.max_stream_batch as u64).max(1);
                self.dma_cycles(
                    params.ksk_total_bytes() / reuse,
                    cfg.hbm.total_gb_s - cfg.hbm.xpu_priority_gb_s(),
                )
            }
            Op::Dma(DmaOp::LoadLwe) | Op::Dma(DmaOp::StoreLwe) => self.dma_cycles(
                group_size * (params.lwe_dim as u64 + 1) * 4,
                cfg.hbm.total_gb_s,
            ),
        }
    }

    fn dma_cycles(&self, bytes: u64, gb_s: f64) -> u64 {
        ((bytes as f64 / (gb_s * 1e9)) * self.config.clock_hz())
            .ceil()
            .max(1.0) as u64
    }

    /// Dispatch a program onto one XPU slot (a group occupies the whole
    /// XPU complex), one full-rate VPU slot, and [`DMA_ENGINES`] DMA
    /// engines. Instructions issue as soon as their dependencies resolve
    /// and their unit frees, regardless of program order — this is what
    /// lets the KS of group `g` overlap the BR of group `g+1` (Fig 6).
    pub fn run(&self, program: &Program, params: &TfheParams) -> Timeline {
        self.schedule(program, params, false).0
    }

    /// As [`run`](Self::run), additionally journaling every dispatch into
    /// an [`ExecutionTrace`]: one track per engine, per-instruction stall
    /// cause and wait cycles, and per-unit busy/stall counters.
    pub fn run_traced(&self, program: &Program, params: &TfheParams) -> (Timeline, ExecutionTrace) {
        let (timeline, trace) = self.schedule(program, params, true);
        (timeline, trace.expect("trace requested"))
    }

    fn schedule(
        &self,
        program: &Program,
        params: &TfheParams,
        want_trace: bool,
    ) -> (Timeline, Option<ExecutionTrace>) {
        let group_size = self.config.bootstrap_cores() as u64;
        let report = self.sim_report(params, group_size);
        let n = program.len();
        let instrs = program.instructions();

        // Precomputed durations: O(n) thanks to the memoized report.
        let durations: Vec<u64> = instrs
            .iter()
            .map(|i| self.duration_with(&i.op, params, group_size, Some(&report)))
            .collect();

        // Dependency bookkeeping: successors + remaining-dependency
        // counts, and the cycle each instruction becomes ready (max
        // finish over its dependencies, folded in as they complete).
        let mut pending = vec![0u32; n];
        let mut succs: Vec<Vec<InstrId>> = vec![Vec::new(); n];
        for instr in instrs {
            pending[instr.id as usize] = instr.deps.len() as u32;
            for &d in &instr.deps {
                succs[d as usize].push(instr.id);
            }
        }

        let mut queues = [
            UnitQueue::default(),
            UnitQueue::default(),
            UnitQueue::default(),
        ];
        let unit_of = |u: UnitClass| match u {
            UnitClass::Xpu => 0usize,
            UnitClass::Vpu => 1,
            UnitClass::Dma => 2,
        };
        let mut ready_at = vec![0u64; n];
        for instr in instrs {
            if instr.deps.is_empty() {
                queues[unit_of(instr.op.unit())].push(0, instr.id);
            }
        }

        let mut xpu_free = 0u64;
        let mut vpu_free = 0u64;
        let mut dma_free = [0u64; DMA_ENGINES];
        let mut finish = vec![0u64; n];
        let mut timeline = Timeline {
            entries: Vec::with_capacity(n),
        };
        let mut trace = want_trace.then(|| {
            let mut t = ExecutionTrace::new(self.config.clock_hz() / 1e6);
            // Fixed track order, independent of dispatch order.
            t.track("HwScheduler", "XPU");
            t.track("HwScheduler", "VPU");
            for e in 0..DMA_ENGINES {
                t.track("HwScheduler", &format!("DMA{e}"));
            }
            t
        });
        let mut counters: HashMap<UnitClass, UnitCounters> = HashMap::new();

        let mut scheduled = 0usize;
        while scheduled < n {
            // The cheapest dispatch across the three unit classes: each
            // queue yields its own earliest (start, id); the global
            // minimum matches the reference scheduler's full rescan.
            let mut best: Option<(u64, InstrId, usize)> = None;
            for (u, queue) in queues.iter_mut().enumerate() {
                let unit_free = match u {
                    0 => xpu_free,
                    1 => vpu_free,
                    _ => *dma_free.iter().min().expect("DMA engines"),
                };
                if let Some((start, id)) = queue.peek(unit_free) {
                    let better = best.is_none_or(|(s, i, _)| (start, id) < (s, i));
                    if better {
                        best = Some((start, id, u));
                    }
                }
            }
            let (start, id, u) = best.expect("acyclic program always has a ready instruction");
            queues[u].pop(id);

            let idx = id as usize;
            let instr = &instrs[idx];
            let dur = durations[idx];
            let end = start + dur;
            let unit = instr.op.unit();
            let engine = match unit {
                UnitClass::Xpu => {
                    xpu_free = end;
                    0usize
                }
                UnitClass::Vpu => {
                    vpu_free = end;
                    0
                }
                UnitClass::Dma => {
                    let (e, slot) = dma_free
                        .iter_mut()
                        .enumerate()
                        .min_by_key(|(_, t)| **t)
                        .expect("DMA engines");
                    *slot = end;
                    e
                }
            };
            finish[idx] = end;
            timeline.entries.push(Scheduled {
                id,
                start,
                end,
                unit,
            });
            scheduled += 1;

            let unit_wait = start - ready_at[idx];
            let c = counters.entry(unit).or_insert(UnitCounters {
                engines: unit_engines(unit),
                ..UnitCounters::default()
            });
            c.instructions += 1;
            c.busy += dur;
            c.stall += unit_wait;
            if let Some(t) = trace.as_mut() {
                let thread = match unit {
                    UnitClass::Xpu => "XPU".to_string(),
                    UnitClass::Vpu => "VPU".to_string(),
                    UnitClass::Dma => format!("DMA{engine}"),
                };
                let track = t.track("HwScheduler", &thread);
                let cause = if unit_wait > 0 {
                    StallCause::UnitBusy
                } else if !instr.deps.is_empty() {
                    StallCause::Dependency
                } else {
                    StallCause::None
                };
                t.span_with_args(
                    track,
                    &format!("{} @g{}", instr.op, instr.group.0),
                    &unit.to_string().to_lowercase(),
                    start,
                    dur.max(1),
                    vec![
                        ("id".into(), id.to_string()),
                        ("group".into(), instr.group.0.to_string()),
                        ("ready_cycle".into(), ready_at[idx].to_string()),
                        ("unit_wait_cycles".into(), unit_wait.to_string()),
                        ("stall".into(), cause.label().into()),
                    ],
                );
            }

            for &s in &succs[idx] {
                let si = s as usize;
                ready_at[si] = ready_at[si].max(end);
                pending[si] -= 1;
                if pending[si] == 0 {
                    queues[unit_of(instrs[si].op.unit())].push(ready_at[si], s);
                }
            }
        }

        timeline.entries.sort_by_key(|e| (e.start, e.id));
        if let Some(t) = trace.as_mut() {
            for (unit, c) in &counters {
                t.set_counters(&unit.to_string(), *c);
            }
        }
        (timeline, trace)
    }

    /// The original O(n²) list scheduler this crate shipped with: every
    /// dispatch rescans the whole program, and every `BlindRotate`
    /// re-runs the analytical simulator. Kept verbatim as the
    /// differential oracle for [`run`](Self::run) (identical policy, so
    /// identical timelines) and as the baseline of the
    /// `scheduler_event_driven` bench.
    pub fn run_reference(&self, program: &Program, params: &TfheParams) -> Timeline {
        let group_size = self.config.bootstrap_cores() as u64;
        let n = program.len();
        let mut finish: Vec<Option<u64>> = vec![None; n];
        let mut xpu_free = 0u64;
        let mut vpu_free = 0u64;
        let mut dma_free = [0u64; DMA_ENGINES];
        let mut timeline = Timeline::default();
        let mut scheduled = 0usize;
        while scheduled < n {
            // Among ready instructions, pick the earliest possible start
            // (ties: program order).
            let mut best: Option<(u64, usize)> = None;
            for instr in program.instructions() {
                if finish[instr.id as usize].is_some() {
                    continue;
                }
                let deps_done: Option<u64> = instr
                    .deps
                    .iter()
                    .map(|&d| finish[d as usize])
                    .try_fold(0u64, |acc, f| f.map(|v| acc.max(v)));
                let Some(dep_ready) = deps_done else { continue };
                let unit_free = match instr.op.unit() {
                    UnitClass::Xpu => xpu_free,
                    UnitClass::Vpu => vpu_free,
                    UnitClass::Dma => *dma_free.iter().min().expect("two engines"),
                };
                let start = dep_ready.max(unit_free);
                if best.is_none_or(|(s, _)| start < s) {
                    best = Some((start, instr.id as usize));
                }
            }
            let (start, idx) = best.expect("acyclic program always has a ready instruction");
            let instr = &program.instructions()[idx];
            // The seed implementation re-entered the full analytical
            // simulator here for every BlindRotate; `None` preserves that.
            let dur = self.duration_with(&instr.op, params, group_size, None);
            let end = start + dur;
            let unit = instr.op.unit();
            match unit {
                UnitClass::Xpu => xpu_free = end,
                UnitClass::Vpu => vpu_free = end,
                UnitClass::Dma => {
                    let slot = dma_free
                        .iter_mut()
                        .min_by_key(|t| **t)
                        .expect("two engines");
                    *slot = end;
                }
            }
            finish[idx] = Some(end);
            timeline.entries.push(Scheduled {
                id: instr.id,
                start,
                end,
                unit,
            });
            scheduled += 1;
        }
        timeline.entries.sort_by_key(|e| (e.start, e.id));
        timeline
    }

    /// Convenience: makespan in seconds.
    pub fn run_seconds(&self, program: &Program, params: &TfheParams) -> f64 {
        self.run(program, params).makespan_cycles() as f64 / self.config.clock_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::software::{SwScheduler, Workload};
    use morphling_tfhe::ParamSet;

    fn setup() -> (SwScheduler, HwScheduler, TfheParams) {
        let cfg = ArchConfig::morphling_default();
        (
            SwScheduler::new(cfg.clone()),
            HwScheduler::new(cfg),
            ParamSet::I.params(),
        )
    }

    #[test]
    fn single_group_matches_simulator_latency() {
        let (sw, hw, params) = setup();
        let prog = sw.compile(&Workload::independent(16), &params);
        let t = hw.run_seconds(&prog, &params) * 1e3;
        // One group ≈ one bootstrap latency plus the (unoverlapped, since
        // there is no next group) key switch and DMA edges.
        assert!((0.10..0.17).contains(&t), "latency {t} ms");
    }

    #[test]
    fn independent_groups_pipeline_on_the_xpu() {
        let (sw, hw, params) = setup();
        let one = hw.run(&sw.compile(&Workload::independent(16), &params), &params);
        let four = hw.run(&sw.compile(&Workload::independent(64), &params), &params);
        // Four groups take ≈ 4× the XPU time, but VPU/DMA overlap, so the
        // makespan is < 4.5× a single group and XPU utilization is high.
        assert!(four.makespan_cycles() < one.makespan_cycles() * 9 / 2);
        assert!(
            four.utilization(UnitClass::Xpu) > 0.85,
            "{}",
            four.utilization(UnitClass::Xpu)
        );
    }

    #[test]
    fn dependent_levels_serialize() {
        let (sw, hw, params) = setup();
        // Four dependent levels vs the same work fully independent: the
        // dependent chain cannot overlap KS with the next level's BR.
        let w = Workload::independent(16)
            .then(16, 0)
            .then(16, 0)
            .then(16, 0);
        let seq = hw.run_seconds(&sw.compile(&w, &params), &params);
        let par = hw.run_seconds(&sw.compile(&Workload::independent(64), &params), &params);
        assert!(seq > par * 1.1, "seq {seq} par {par}");
    }

    #[test]
    fn vpu_work_overlaps_xpu_work() {
        let (sw, hw, params) = setup();
        let tl = hw.run(&sw.compile(&Workload::independent(64), &params), &params);
        // KS of group g overlaps BR of group g+1: VPU busy cycles fit well
        // inside the makespan.
        assert!(tl.busy_cycles(UnitClass::Vpu) < tl.makespan_cycles());
    }

    #[test]
    fn utilization_never_exceeds_one() {
        let (sw, hw, params) = setup();
        // A DMA-heavy program: many levels so both DMA engines log busy
        // cycles against the same makespan.
        let w = Workload::independent(64).then(64, 0).then(64, 0);
        let tl = hw.run(&sw.compile(&w, &params), &params);
        for unit in [UnitClass::Xpu, UnitClass::Vpu, UnitClass::Dma] {
            let u = tl.utilization(unit);
            assert!(
                (0.0..=1.0).contains(&u),
                "{unit} utilization {u} out of range"
            );
        }
    }

    #[test]
    fn event_driven_matches_the_reference_scheduler() {
        let (sw, hw, params) = setup();
        for w in [
            Workload::independent(16),
            Workload::independent(64),
            Workload::independent(16).then(32, 5000).then(16, 0),
        ] {
            let prog = sw.compile(&w, &params);
            let fast = hw.run(&prog, &params);
            let slow = hw.run_reference(&prog, &params);
            assert_eq!(fast.entries(), slow.entries(), "workload {w:?}");
        }
    }

    #[test]
    fn traced_run_journals_every_instruction() {
        let (sw, hw, params) = setup();
        let prog = sw.compile(&Workload::independent(64), &params);
        let (tl, trace) = hw.run_traced(&prog, &params);
        assert_eq!(trace.spans().len(), prog.len());
        assert_eq!(tl.entries().len(), prog.len());
        // Counter busy cycles agree with the timeline's accounting.
        for unit in [UnitClass::Xpu, UnitClass::Vpu, UnitClass::Dma] {
            let c = trace.unit_counters(&unit.to_string()).expect("unit ran");
            assert_eq!(c.busy, tl.busy_cycles(unit), "{unit}");
            assert_eq!(c.engines, unit_engines(unit));
            assert!(c.utilization(tl.makespan_cycles()) <= 1.0);
        }
        // The BR of group 1 waits for the XPU busy with group 0: at least
        // one instruction records a unit-busy stall.
        assert!(trace
            .spans()
            .iter()
            .any(|s| s.args.iter().any(|(k, v)| k == "stall" && v == "unit_busy")));
        let json = trace.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn report_memoization_is_shared_across_runs() {
        let (sw, hw, params) = setup();
        let prog = sw.compile(&Workload::independent(64), &params);
        let a = hw.run(&prog, &params);
        let b = hw.run(&prog, &params);
        assert_eq!(a.entries(), b.entries());
        assert_eq!(hw.report_cache.borrow().len(), 1);
    }
}
