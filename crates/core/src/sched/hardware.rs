//! The hardware scheduler (Fig 6, right side): a scoreboard that
//! dispatches the instruction stream onto the simulated units as their
//! dependencies resolve, overlapping independent groups (XPU compute vs
//! VPU post-processing vs DMA transfers).

use morphling_tfhe::TfheParams;

use crate::config::ArchConfig;
use crate::isa::{DmaOp, InstrId, Op, Program, UnitClass, VpuOp, XpuOp};
use crate::sim::vpu::VpuCost;
use crate::sim::Simulator;

/// One scheduled instruction occurrence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scheduled {
    /// Instruction id.
    pub id: InstrId,
    /// Start cycle.
    pub start: u64,
    /// End cycle.
    pub end: u64,
    /// Unit that executed it.
    pub unit: UnitClass,
}

/// The execution timeline produced by the hardware scheduler.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    entries: Vec<Scheduled>,
}

impl Timeline {
    /// All scheduled instructions in issue order.
    pub fn entries(&self) -> &[Scheduled] {
        &self.entries
    }

    /// Total cycles from first issue to last completion.
    pub fn makespan_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.end).max().unwrap_or(0)
    }

    /// Busy cycles of one unit class (sum of instruction durations).
    pub fn busy_cycles(&self, unit: UnitClass) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.unit == unit)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Utilization of a unit class over the makespan.
    pub fn utilization(&self, unit: UnitClass) -> f64 {
        let span = self.makespan_cycles();
        if span == 0 {
            0.0
        } else {
            self.busy_cycles(unit) as f64 / span as f64
        }
    }
}

/// The hardware scheduler / scoreboard.
#[derive(Clone, Debug)]
pub struct HwScheduler {
    config: ArchConfig,
}

impl HwScheduler {
    /// Create a scheduler for one architecture.
    pub fn new(config: ArchConfig) -> Self {
        Self { config }
    }

    /// Duration (cycles) of one instruction on its unit, for a
    /// group of `group_size` ciphertexts under `params`.
    fn duration(&self, op: &Op, params: &TfheParams, group_size: u64) -> u64 {
        let cfg = &self.config;
        let vpu = VpuCost::compute(params);
        match op {
            Op::Xpu(XpuOp::BlindRotate { iterations }) => {
                // The full simulator supplies the stalled iteration period.
                let report =
                    Simulator::new(cfg.clone()).bootstrap_batch(params, group_size as usize);
                (u64::from(*iterations) as f64 * report.iter_cycles as f64 * report.stall) as u64
            }
            Op::Vpu(VpuOp::ModSwitch) => (group_size * vpu.mod_switch_macs)
                .div_ceil(cfg.vpu_macs_per_cycle())
                .max(1),
            Op::Vpu(VpuOp::SampleExtract) => (group_size * vpu.sample_extract_words)
                .div_ceil((cfg.lanes * cfg.vpu_groups) as u64)
                .max(1),
            Op::Vpu(VpuOp::KeySwitch) => (group_size * vpu.key_switch_macs)
                .div_ceil(cfg.vpu_macs_per_cycle())
                .max(1),
            Op::Vpu(VpuOp::PAlu { macs }) => macs.div_ceil(cfg.vpu_macs_per_cycle()).max(1),
            Op::Dma(DmaOp::LoadBskWindow { .. }) => {
                // Prefetch head start: fill the double-buffered A2 window.
                self.dma_cycles(
                    2 * params.bsk_iter_bytes_fourier(),
                    cfg.hbm.xpu_priority_gb_s(),
                )
            }
            Op::Dma(DmaOp::LoadKsk) => {
                // One KSK tile per group; the full key is reused across the
                // max_stream_batch × groups of a 64-ciphertext super-group.
                let reuse = (cfg.max_stream_batch as u64).max(1);
                self.dma_cycles(
                    params.ksk_total_bytes() / reuse,
                    cfg.hbm.total_gb_s - cfg.hbm.xpu_priority_gb_s(),
                )
            }
            Op::Dma(DmaOp::LoadLwe) | Op::Dma(DmaOp::StoreLwe) => self.dma_cycles(
                group_size * (params.lwe_dim as u64 + 1) * 4,
                cfg.hbm.total_gb_s,
            ),
        }
    }

    fn dma_cycles(&self, bytes: u64, gb_s: f64) -> u64 {
        ((bytes as f64 / (gb_s * 1e9)) * self.config.clock_hz())
            .ceil()
            .max(1.0) as u64
    }

    /// Dispatch a program: an event-driven list scheduler (the scoreboard
    /// of §V-E) with one XPU slot (a group occupies the whole XPU
    /// complex), one full-rate VPU slot, and two DMA engines. Instructions
    /// issue as soon as their dependencies resolve and their unit frees,
    /// regardless of program order — this is what lets the KS of group `g`
    /// overlap the BR of group `g+1` (Fig 6).
    pub fn run(&self, program: &Program, params: &TfheParams) -> Timeline {
        let group_size = self.config.bootstrap_cores() as u64;
        let n = program.len();
        let mut finish: Vec<Option<u64>> = vec![None; n];
        let mut xpu_free = 0u64;
        let mut vpu_free = 0u64;
        let mut dma_free = [0u64; 2];
        let mut timeline = Timeline::default();
        let mut scheduled = 0usize;
        while scheduled < n {
            // Among ready instructions, pick the earliest possible start
            // (ties: program order).
            let mut best: Option<(u64, usize)> = None;
            for instr in program.instructions() {
                if finish[instr.id as usize].is_some() {
                    continue;
                }
                let deps_done: Option<u64> = instr
                    .deps
                    .iter()
                    .map(|&d| finish[d as usize])
                    .try_fold(0u64, |acc, f| f.map(|v| acc.max(v)));
                let Some(dep_ready) = deps_done else { continue };
                let unit_free = match instr.op.unit() {
                    UnitClass::Xpu => xpu_free,
                    UnitClass::Vpu => vpu_free,
                    UnitClass::Dma => *dma_free.iter().min().expect("two engines"),
                };
                let start = dep_ready.max(unit_free);
                if best.is_none_or(|(s, _)| start < s) {
                    best = Some((start, instr.id as usize));
                }
            }
            let (start, idx) = best.expect("acyclic program always has a ready instruction");
            let instr = &program.instructions()[idx];
            let dur = self.duration(&instr.op, params, group_size);
            let end = start + dur;
            let unit = instr.op.unit();
            match unit {
                UnitClass::Xpu => xpu_free = end,
                UnitClass::Vpu => vpu_free = end,
                UnitClass::Dma => {
                    let slot = dma_free
                        .iter_mut()
                        .min_by_key(|t| **t)
                        .expect("two engines");
                    *slot = end;
                }
            }
            finish[idx] = Some(end);
            timeline.entries.push(Scheduled {
                id: instr.id,
                start,
                end,
                unit,
            });
            scheduled += 1;
        }
        timeline.entries.sort_by_key(|e| (e.start, e.id));
        timeline
    }

    /// Convenience: makespan in seconds.
    pub fn run_seconds(&self, program: &Program, params: &TfheParams) -> f64 {
        self.run(program, params).makespan_cycles() as f64 / self.config.clock_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::software::{SwScheduler, Workload};
    use morphling_tfhe::ParamSet;

    fn setup() -> (SwScheduler, HwScheduler, TfheParams) {
        let cfg = ArchConfig::morphling_default();
        (
            SwScheduler::new(cfg.clone()),
            HwScheduler::new(cfg),
            ParamSet::I.params(),
        )
    }

    #[test]
    fn single_group_matches_simulator_latency() {
        let (sw, hw, params) = setup();
        let prog = sw.compile(&Workload::independent(16), &params);
        let t = hw.run_seconds(&prog, &params) * 1e3;
        // One group ≈ one bootstrap latency plus the (unoverlapped, since
        // there is no next group) key switch and DMA edges.
        assert!((0.10..0.17).contains(&t), "latency {t} ms");
    }

    #[test]
    fn independent_groups_pipeline_on_the_xpu() {
        let (sw, hw, params) = setup();
        let one = hw.run(&sw.compile(&Workload::independent(16), &params), &params);
        let four = hw.run(&sw.compile(&Workload::independent(64), &params), &params);
        // Four groups take ≈ 4× the XPU time, but VPU/DMA overlap, so the
        // makespan is < 4.5× a single group and XPU utilization is high.
        assert!(four.makespan_cycles() < one.makespan_cycles() * 9 / 2);
        assert!(
            four.utilization(UnitClass::Xpu) > 0.85,
            "{}",
            four.utilization(UnitClass::Xpu)
        );
    }

    #[test]
    fn dependent_levels_serialize() {
        let (sw, hw, params) = setup();
        // Four dependent levels vs the same work fully independent: the
        // dependent chain cannot overlap KS with the next level's BR.
        let w = Workload::independent(16)
            .then(16, 0)
            .then(16, 0)
            .then(16, 0);
        let seq = hw.run_seconds(&sw.compile(&w, &params), &params);
        let par = hw.run_seconds(&sw.compile(&Workload::independent(64), &params), &params);
        assert!(seq > par * 1.1, "seq {seq} par {par}");
    }

    #[test]
    fn vpu_work_overlaps_xpu_work() {
        let (sw, hw, params) = setup();
        let tl = hw.run(&sw.compile(&Workload::independent(64), &params), &params);
        // KS of group g overlaps BR of group g+1: VPU busy cycles fit well
        // inside the makespan.
        assert!(tl.busy_cycles(UnitClass::Vpu) < tl.makespan_cycles());
    }
}
