//! SW-HW co-optimized scheduling (§V-E, Fig 6).
//!
//! The [software scheduler](software::SwScheduler) batches an application's
//! bootstrap demands into 64-ciphertext groups and emits a dependency-
//! annotated [`crate::isa::Program`]; the
//! [hardware scheduler](hardware::HwScheduler) dispatches that program onto
//! the simulated units, overlapping independent groups.

pub mod hardware;
pub mod software;

pub use hardware::{unit_engines, HwScheduler, Scheduled, Timeline, DMA_ENGINES};
pub use software::{SwScheduler, Workload};
