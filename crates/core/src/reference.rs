//! Published baseline numbers for Table V, with provenance.
//!
//! **Substitution note** (DESIGN.md §1): we cannot run the authors' CPU
//! cluster, the GPUs, the FPGA, or the MATCHA/Strix ASICs. Table V's
//! baseline rows are therefore encoded verbatim from the paper, and the
//! Morphling rows are *measured* from our simulator; speedups are computed
//! between the two, exactly as the paper does.

/// One platform row of Table V.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineRow {
    /// System name as printed in the paper.
    pub system: &'static str,
    /// Platform description.
    pub platform: &'static str,
    /// Die area in mm² (ASICs only).
    pub area_mm2: Option<f64>,
    /// Power in watts (ASICs only).
    pub power_w: Option<f64>,
    /// TFHE parameter set (Table III name).
    pub param_set: &'static str,
    /// Bootstrapping latency in milliseconds.
    pub latency_ms: f64,
    /// Bootstrapping throughput in bootstrappings per second.
    pub throughput_bs_s: f64,
}

/// All baseline rows of Table V (paper values).
pub const TABLE_V_BASELINES: &[BaselineRow] = &[
    BaselineRow {
        system: "Concrete",
        platform: "CPU",
        area_mm2: None,
        power_w: None,
        param_set: "I",
        latency_ms: 15.65,
        throughput_bs_s: 63.0,
    },
    BaselineRow {
        system: "Concrete",
        platform: "CPU",
        area_mm2: None,
        power_w: None,
        param_set: "II",
        latency_ms: 27.26,
        throughput_bs_s: 36.0,
    },
    BaselineRow {
        system: "Concrete",
        platform: "CPU",
        area_mm2: None,
        power_w: None,
        param_set: "III",
        latency_ms: 82.19,
        throughput_bs_s: 12.0,
    },
    BaselineRow {
        system: "NuFHE",
        platform: "GPU",
        area_mm2: None,
        power_w: None,
        param_set: "I",
        latency_ms: 240.0,
        throughput_bs_s: 2500.0,
    },
    BaselineRow {
        system: "NuFHE",
        platform: "GPU",
        area_mm2: None,
        power_w: None,
        param_set: "II",
        latency_ms: 420.0,
        throughput_bs_s: 550.0,
    },
    BaselineRow {
        system: "cuda TFHE",
        platform: "GPU",
        area_mm2: None,
        power_w: None,
        param_set: "IV",
        latency_ms: 66.0,
        throughput_bs_s: 1786.0,
    },
    BaselineRow {
        system: "XHEC",
        platform: "FPGA",
        area_mm2: None,
        power_w: None,
        param_set: "I",
        latency_ms: 1.15,
        throughput_bs_s: 4000.0,
    },
    BaselineRow {
        system: "XHEC",
        platform: "FPGA",
        area_mm2: None,
        power_w: None,
        param_set: "II",
        latency_ms: 1.65,
        throughput_bs_s: 2800.0,
    },
    BaselineRow {
        system: "MATCHA",
        platform: "ASIC (16 nm)",
        area_mm2: Some(36.96),
        power_w: Some(39.98),
        param_set: "I",
        latency_ms: 0.20,
        throughput_bs_s: 10_000.0,
    },
    BaselineRow {
        system: "Strix",
        platform: "ASIC (28 nm)",
        area_mm2: Some(141.37),
        power_w: Some(77.14),
        param_set: "I",
        latency_ms: 0.16,
        throughput_bs_s: 74_696.0,
    },
    BaselineRow {
        system: "Strix",
        platform: "ASIC (28 nm)",
        area_mm2: Some(141.37),
        power_w: Some(77.14),
        param_set: "II",
        latency_ms: 0.23,
        throughput_bs_s: 39_600.0,
    },
    BaselineRow {
        system: "Strix",
        platform: "ASIC (28 nm)",
        area_mm2: Some(141.37),
        power_w: Some(77.14),
        param_set: "III",
        latency_ms: 0.44,
        throughput_bs_s: 21_104.0,
    },
];

/// The paper's own Morphling rows of Table V — used to cross-check our
/// simulator, never as its output.
pub const TABLE_V_MORPHLING_PAPER: &[(&str, f64, f64)] = &[
    ("I", 0.11, 147_615.0),
    ("II", 0.20, 78_692.0),
    ("III", 0.38, 41_850.0),
    ("IV", 0.16, 98_933.0),
];

/// Table VI's CPU application execution times (seconds), paper values,
/// measured on a 64-core Xeon Gold 6226R.
pub const TABLE_VI_CPU_SECONDS: &[(&str, f64)] = &[
    ("XG-Boost", 9.59),
    ("DeepCNN-20", 33.32),
    ("DeepCNN-50", 74.94),
    ("DeepCNN-100", 180.09),
    ("VGG-9", 94.78),
];

/// Table VI's Morphling application execution times (seconds), paper
/// values — cross-check targets.
pub const TABLE_VI_MORPHLING_PAPER: &[(&str, f64)] = &[
    ("XG-Boost", 0.06),
    ("DeepCNN-20", 0.34),
    ("DeepCNN-50", 0.84),
    ("DeepCNN-100", 1.72),
    ("VGG-9", 0.67),
];

/// Baselines for a given parameter set.
pub fn baselines_for(param_set: &str) -> impl Iterator<Item = &'static BaselineRow> + use<'_> {
    TABLE_V_BASELINES
        .iter()
        .filter(move |r| r.param_set == param_set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_speedups_match_the_abstract() {
        // 3440× over CPU, 143× over GPU (NuFHE), 14.7× over the SOTA
        // accelerator (MATCHA) — all at their shared parameter sets.
        let morphling_i = TABLE_V_MORPHLING_PAPER[0].2;
        let cpu_i = baselines_for("I")
            .find(|r| r.platform == "CPU")
            .unwrap()
            .throughput_bs_s;
        let gpu_ii = baselines_for("II")
            .find(|r| r.system == "NuFHE")
            .unwrap()
            .throughput_bs_s;
        let morphling_ii = TABLE_V_MORPHLING_PAPER[1].2;
        let matcha = baselines_for("I")
            .find(|r| r.system == "MATCHA")
            .unwrap()
            .throughput_bs_s;
        assert!((morphling_i / cpu_i - 3440.0).abs() / 3440.0 < 0.35);
        assert!((morphling_ii / gpu_ii - 143.0).abs() / 143.0 < 0.01);
        assert!((morphling_i / matcha - 14.76).abs() < 0.1);
    }

    #[test]
    fn every_morphling_row_has_a_param_set() {
        for (set, lat, tput) in TABLE_V_MORPHLING_PAPER {
            assert!(["I", "II", "III", "IV"].contains(set));
            assert!(*lat > 0.0 && *tput > 0.0);
        }
    }
}
