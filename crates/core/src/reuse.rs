//! Transform-domain reuse modes (§III, Fig 2).

use std::fmt;

/// How much transform-domain data the VPE array reuses during the external
/// product. The three types of Fig 2, all built with the *same* compute
/// resources so Fig 7-b's comparison is apples-to-apples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ReuseMode {
    /// Fig 2-a: every VPE performs its own forward and inverse transform.
    /// MATCHA-like.
    NoReuse,
    /// Fig 2-b: the forward transform of the decomposed ACC input is shared
    /// along a VPE row, but every VPE still inverse-transforms its own
    /// output and accumulates in the coefficient domain. Strix-like.
    InputReuse,
    /// Fig 2-c: forward transforms are shared *and* partial sums accumulate
    /// in the transform domain (IFFT linearity), so only `(k+1)` inverse
    /// transforms run per dot product. Morphling. Default.
    #[default]
    InputOutputReuse,
}

impl ReuseMode {
    /// All three modes in Fig 2 order.
    pub const ALL: [ReuseMode; 3] = [
        ReuseMode::NoReuse,
        ReuseMode::InputReuse,
        ReuseMode::InputOutputReuse,
    ];

    /// Forward transforms needed per blind-rotation iteration *per
    /// ciphertext* for GLWE dimension `k` and BSK level `l_b`.
    pub fn forward_transforms_per_iter(self, k: usize, l_b: usize) -> u64 {
        let k1 = (k + 1) as u64;
        let l = l_b as u64;
        match self {
            // Each of the (k+1) output columns transforms each of the
            // (k+1)·l_b digit polynomials itself.
            ReuseMode::NoReuse => k1 * l * k1,
            // One transform per digit polynomial, shared across columns.
            ReuseMode::InputReuse | ReuseMode::InputOutputReuse => k1 * l,
        }
    }

    /// Inverse transforms needed per blind-rotation iteration per
    /// ciphertext.
    pub fn inverse_transforms_per_iter(self, k: usize, l_b: usize) -> u64 {
        let k1 = (k + 1) as u64;
        let l = l_b as u64;
        match self {
            // Every polynomial product is inverse-transformed individually
            // and accumulated in the coefficient domain.
            ReuseMode::NoReuse | ReuseMode::InputReuse => k1 * l * k1,
            // Accumulation happens in the transform domain; one IFFT per
            // output component.
            ReuseMode::InputOutputReuse => k1,
        }
    }

    /// Total domain transforms per iteration per ciphertext.
    pub fn transforms_per_iter(self, k: usize, l_b: usize) -> u64 {
        self.forward_transforms_per_iter(k, l_b) + self.inverse_transforms_per_iter(k, l_b)
    }

    /// Total domain transforms for a full bootstrap (`n` iterations).
    pub fn transforms_per_bootstrap(self, n: usize, k: usize, l_b: usize) -> u64 {
        n as u64 * self.transforms_per_iter(k, l_b)
    }

    /// Fractional reduction in domain transforms relative to
    /// [`ReuseMode::NoReuse`] (Fig 3's y-axis).
    pub fn reduction_vs_no_reuse(self, k: usize, l_b: usize) -> f64 {
        let base = ReuseMode::NoReuse.transforms_per_iter(k, l_b) as f64;
        1.0 - self.transforms_per_iter(k, l_b) as f64 / base
    }
}

impl fmt::Display for ReuseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReuseMode::NoReuse => "No-Reuse",
            ReuseMode::InputReuse => "Input-Reuse",
            ReuseMode::InputOutputReuse => "Input+Output-Reuse",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reduction_percentages() {
        // §III: input reuse reduces 25% at (k,l_b)=(1,1) and 37.5% at
        // (3,3); input+output reuse reduces up to 83.3% at (3,3).
        let r = ReuseMode::InputReuse.reduction_vs_no_reuse(1, 1);
        assert!((r - 0.25).abs() < 1e-9, "{r}");
        let r = ReuseMode::InputReuse.reduction_vs_no_reuse(3, 3);
        assert!((r - 0.375).abs() < 1e-9, "{r}");
        let r = ReuseMode::InputOutputReuse.reduction_vs_no_reuse(3, 3);
        assert!((r - 5.0 / 6.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn fig3_maximum_transform_count() {
        // Fig 3: "bootstrapping could require up to 46752 domain-transform
        // operations" — set C (n=487, k=3, l_b=3), no reuse.
        assert_eq!(
            ReuseMode::NoReuse.transforms_per_bootstrap(487, 3, 3),
            46_752
        );
    }

    #[test]
    fn reuse_never_increases_transforms() {
        for k in 1..=3 {
            for l in 1..=4 {
                let no = ReuseMode::NoReuse.transforms_per_iter(k, l);
                let inp = ReuseMode::InputReuse.transforms_per_iter(k, l);
                let io = ReuseMode::InputOutputReuse.transforms_per_iter(k, l);
                assert!(inp <= no && io <= inp, "k={k} l={l}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            ReuseMode::InputOutputReuse.to_string(),
            "Input+Output-Reuse"
        );
    }
}
