//! Deterministic fault injection for the accelerator simulator, plus
//! re-exports of the engine-side injection machinery.
//!
//! The engine half (worker panics, wedged jobs, corrupted outputs) lives
//! in [`morphling_tfhe::faults`] next to the
//! [`BootstrapEngine`](morphling_tfhe::BootstrapEngine) it targets; this
//! module re-exports it so fault-aware tooling can depend on
//! `morphling_core::faults` alone. The simulator half models **transient
//! component outages** of the modeled hardware:
//!
//! - an FFT/IFFT unit dropping out for a number of cycles (the pipeline
//!   drains and refills);
//! - a DMA engine stalling a BSK burst;
//! - an HBM bit flip on a burst, forcing a re-fetch of that iteration's
//!   BSK slice.
//!
//! Faults **re-cost** the simulated batch instead of crashing it: each
//! sampled event adds a deterministic cycle penalty to the report's
//! blind-rotation window, and the events are journaled on the report (and
//! in its trace) so a chaos run shows *where* the latency went. Sampling
//! uses the same `(seed, domain, key, attempt)` hash as the engine
//! injector ([`decide`]), so a plan replays identically across runs — and
//! a zero-rate plan is bit-for-bit identical to no plan at all.

pub use morphling_tfhe::faults::{decide, FaultInjector, FaultPlan, FaultSite};

/// Which modeled component a simulator fault hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimFaultKind {
    /// A transform (FFT/IFFT) unit is down: the XPU pipeline drains,
    /// waits out the outage, and pays a refill.
    FftOutage,
    /// A DMA engine stalls mid-burst; the iteration waits for the
    /// transfer to resume.
    DmaStall,
    /// An HBM burst arrives corrupted (bit flip caught by ECC/CRC); the
    /// iteration's BSK slice is re-fetched over the XPU-priority
    /// channels.
    HbmBitFlip,
}

impl SimFaultKind {
    /// Stable per-kind hash-domain separator (disjoint from the engine
    /// sites' domains).
    fn domain(self) -> u64 {
        match self {
            SimFaultKind::FftOutage => 0x66_66_74_5f,
            SimFaultKind::DmaStall => 0x64_6d_61_5f,
            SimFaultKind::HbmBitFlip => 0x68_62_6d_5f,
        }
    }

    /// Short lower-case label for trace span names.
    pub fn label(self) -> &'static str {
        match self {
            SimFaultKind::FftOutage => "fft_outage",
            SimFaultKind::DmaStall => "dma_stall",
            SimFaultKind::HbmBitFlip => "hbm_bitflip",
        }
    }
}

/// A seeded schedule of transient component outages for the simulator.
/// Rates are per blind-rotation iteration; the default plan injects
/// nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimFaultPlan {
    /// Seed for every sampling decision.
    pub seed: u64,
    /// Per-iteration probability a transform unit drops out.
    pub fft_outage_rate: f64,
    /// How many cycles a transform outage lasts (the pipeline refill is
    /// charged on top).
    pub fft_outage_cycles: u64,
    /// Per-iteration probability a DMA burst stalls.
    pub dma_stall_rate: f64,
    /// How many cycles a stalled DMA burst loses.
    pub dma_stall_cycles: u64,
    /// Per-iteration probability an HBM burst needs a re-fetch.
    pub hbm_bitflip_rate: f64,
}

impl Default for SimFaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            fft_outage_rate: 0.0,
            fft_outage_cycles: 500,
            dma_stall_rate: 0.0,
            dma_stall_cycles: 200,
            hbm_bitflip_rate: 0.0,
        }
    }
}

impl SimFaultPlan {
    /// Start an all-zero plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Set the transform-outage rate and duration.
    #[must_use]
    pub fn with_fft_outage(mut self, rate: f64, cycles: u64) -> Self {
        self.fft_outage_rate = rate;
        self.fft_outage_cycles = cycles;
        self
    }

    /// Set the DMA-stall rate and duration.
    #[must_use]
    pub fn with_dma_stall(mut self, rate: f64, cycles: u64) -> Self {
        self.dma_stall_rate = rate;
        self.dma_stall_cycles = cycles;
        self
    }

    /// Set the HBM bit-flip rate (the re-fetch penalty is derived from
    /// the architecture's channel bandwidth).
    #[must_use]
    pub fn with_hbm_bitflip(mut self, rate: f64) -> Self {
        self.hbm_bitflip_rate = rate;
        self
    }

    /// `true` if every rate is zero — the simulator skips all fault
    /// bookkeeping and its report is bit-identical to a fault-free run.
    pub fn is_noop(&self) -> bool {
        self.fft_outage_rate <= 0.0 && self.dma_stall_rate <= 0.0 && self.hbm_bitflip_rate <= 0.0
    }

    /// The rate configured for one kind.
    pub fn rate(&self, kind: SimFaultKind) -> f64 {
        match kind {
            SimFaultKind::FftOutage => self.fft_outage_rate,
            SimFaultKind::DmaStall => self.dma_stall_rate,
            SimFaultKind::HbmBitFlip => self.hbm_bitflip_rate,
        }
    }

    /// Sample which iterations of an `iters`-iteration blind rotation are
    /// hit, deterministically from the seed. Events come back ordered by
    /// iteration, one per (iteration, kind) pair that fires.
    pub fn sample(&self, iters: u64) -> Vec<(u64, SimFaultKind)> {
        if self.is_noop() {
            return Vec::new();
        }
        let mut hits = Vec::new();
        for iter in 0..iters {
            for kind in [
                SimFaultKind::FftOutage,
                SimFaultKind::DmaStall,
                SimFaultKind::HbmBitFlip,
            ] {
                if decide(self.seed, kind.domain(), iter, 0, self.rate(kind)) {
                    hits.push((iter, kind));
                }
            }
        }
        hits
    }
}

/// One transient outage the simulator charged to a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimFaultEvent {
    /// The blind-rotation iteration the fault hit.
    pub iter: u64,
    /// Which component failed.
    pub kind: SimFaultKind,
    /// Cycles the batch lost to this event.
    pub penalty_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_samples_nothing() {
        let plan = SimFaultPlan::seeded(99);
        assert!(plan.is_noop());
        assert!(plan.sample(10_000).is_empty());
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let a = SimFaultPlan::seeded(5).with_fft_outage(0.05, 500);
        let b = SimFaultPlan::seeded(5).with_fft_outage(0.05, 500);
        let c = SimFaultPlan::seeded(6).with_fft_outage(0.05, 500);
        assert_eq!(a.sample(2000), b.sample(2000));
        assert_ne!(a.sample(2000), c.sample(2000));
    }

    #[test]
    fn rates_hold_statistically_per_kind() {
        let plan = SimFaultPlan::seeded(7)
            .with_fft_outage(0.1, 500)
            .with_dma_stall(0.02, 200);
        let hits = plan.sample(20_000);
        let fft = hits
            .iter()
            .filter(|(_, k)| *k == SimFaultKind::FftOutage)
            .count();
        let dma = hits
            .iter()
            .filter(|(_, k)| *k == SimFaultKind::DmaStall)
            .count();
        let hbm = hits
            .iter()
            .filter(|(_, k)| *k == SimFaultKind::HbmBitFlip)
            .count();
        assert!((fft as f64 / 20_000.0 - 0.1).abs() < 0.01, "fft {fft}");
        assert!((dma as f64 / 20_000.0 - 0.02).abs() < 0.005, "dma {dma}");
        assert_eq!(hbm, 0, "zero-rate kind must never fire");
    }

    #[test]
    fn events_come_back_in_iteration_order() {
        let plan = SimFaultPlan::seeded(11).with_dma_stall(0.2, 200);
        let hits = plan.sample(512);
        assert!(!hits.is_empty());
        assert!(hits.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn engine_fault_machinery_is_reachable_through_core() {
        // The re-export is the contract: `morphling_core::faults` is the
        // one-stop module for fault-aware tooling.
        let plan = FaultPlan::seeded(3).with_worker_panic(0.5);
        let inj = FaultInjector::new(plan);
        assert!((0..64).any(|k| inj.fires(FaultSite::WorkerPanic, k, 0)));
    }
}
