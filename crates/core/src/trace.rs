//! Execution tracing: a cycle-stamped event journal with per-unit
//! busy/stall counters and Chrome-trace (`chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)) JSON export.
//!
//! The trace abstraction is deliberately small and shared by three
//! producers:
//!
//! - the [hardware scheduler](crate::sched::HwScheduler) journals every
//!   dispatched instruction (unit, group, start/end cycle, stall cause);
//! - the [simulator](crate::sim::SimReport) emits its per-stage latency
//!   spans with bottleneck/stall attribution;
//! - the software [`BootstrapEngine`](morphling_tfhe::BootstrapEngine)
//!   worker pool's job spans convert via
//!   [`ExecutionTrace::from_engine_spans`].
//!
//! Everything is plain data — no I/O here; the `report` binary writes the
//! JSON produced by [`ExecutionTrace::to_chrome_json`] to disk.

use std::fmt::Write as _;

use morphling_tfhe::{
    AutotuneReport, DispatchSpan, FaultEvent, FaultEventKind, JobSpan, KeyEvent, KeyEventKind,
    ResilienceEvent, ResilienceEventKind, SearchPoint,
};

/// Why an instruction did not start the moment it became ready.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Started as soon as it entered the ready queue (no wait at all).
    None,
    /// It was gated by dependency completion (its start equals the cycle
    /// its last dependency finished).
    Dependency,
    /// Its dependencies were done but every engine of its unit class was
    /// occupied — the structural-hazard wait the scoreboard exists to
    /// arbitrate.
    UnitBusy,
}

impl StallCause {
    /// Short lower-case label used in trace args.
    pub fn label(&self) -> &'static str {
        match self {
            StallCause::None => "none",
            StallCause::Dependency => "dependency",
            StallCause::UnitBusy => "unit_busy",
        }
    }
}

/// Identifier of a (process, thread) track inside one trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackId(usize);

#[derive(Clone, Debug)]
struct Track {
    process: String,
    thread: String,
}

/// One completed span on a track: a named interval in ticks, with
/// optional key/value annotations.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Track the span belongs to.
    pub track: TrackId,
    /// Display name (e.g. `"XPU.BR @g3"`).
    pub name: String,
    /// Category tag (Chrome's `cat` field; used for filtering).
    pub cat: String,
    /// Start time in ticks.
    pub start: u64,
    /// Duration in ticks.
    pub dur: u64,
    /// Extra `args` key/value pairs shown in the trace viewer.
    pub args: Vec<(String, String)>,
}

/// Aggregate busy/stall accounting for one execution unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitCounters {
    /// Instructions (or jobs) executed.
    pub instructions: u64,
    /// Ticks spent executing.
    pub busy: u64,
    /// Ticks instructions spent ready-but-waiting for the unit.
    pub stall: u64,
    /// Parallel engines behind this unit name (2 for the DMA pair).
    pub engines: u64,
}

impl UnitCounters {
    /// Busy fraction of the unit over a makespan, normalized by engine
    /// count so a fully-subscribed multi-engine unit reports 1.0.
    pub fn utilization(&self, makespan: u64) -> f64 {
        if makespan == 0 {
            0.0
        } else {
            self.busy as f64 / (makespan * self.engines.max(1)) as f64
        }
    }
}

/// A cycle-stamped execution journal.
///
/// Ticks are an arbitrary time base; `ticks_per_us` scales them to the
/// microseconds Chrome traces expect (pass `clock_hz / 1e6` for cycle
/// stamps, `1e3` for nanosecond stamps).
#[derive(Clone, Debug)]
pub struct ExecutionTrace {
    ticks_per_us: f64,
    tracks: Vec<Track>,
    spans: Vec<TraceSpan>,
    counters: Vec<(String, UnitCounters)>,
}

impl ExecutionTrace {
    /// Create an empty trace with the given tick → microsecond scale.
    pub fn new(ticks_per_us: f64) -> Self {
        Self {
            ticks_per_us: if ticks_per_us > 0.0 {
                ticks_per_us
            } else {
                1.0
            },
            tracks: Vec::new(),
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// Register (or find) the track for `process` / `thread`.
    pub fn track(&mut self, process: &str, thread: &str) -> TrackId {
        if let Some(i) = self
            .tracks
            .iter()
            .position(|t| t.process == process && t.thread == thread)
        {
            return TrackId(i);
        }
        self.tracks.push(Track {
            process: process.to_string(),
            thread: thread.to_string(),
        });
        TrackId(self.tracks.len() - 1)
    }

    /// Append a span.
    pub fn span(&mut self, track: TrackId, name: &str, cat: &str, start: u64, dur: u64) {
        self.span_with_args(track, name, cat, start, dur, Vec::new());
    }

    /// Append a span carrying viewer-visible annotations.
    pub fn span_with_args(
        &mut self,
        track: TrackId,
        name: &str,
        cat: &str,
        start: u64,
        dur: u64,
        args: Vec<(String, String)>,
    ) {
        self.spans.push(TraceSpan {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            start,
            dur,
            args,
        });
    }

    /// Record (or replace) the aggregate counters for one unit name.
    pub fn set_counters(&mut self, unit: &str, counters: UnitCounters) {
        if let Some(slot) = self.counters.iter_mut().find(|(u, _)| u == unit) {
            slot.1 = counters;
        } else {
            self.counters.push((unit.to_string(), counters));
        }
    }

    /// All spans in insertion order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Per-unit aggregate counters, in insertion order.
    pub fn counters(&self) -> &[(String, UnitCounters)] {
        &self.counters
    }

    /// Counters for one unit name, if recorded.
    pub fn unit_counters(&self, unit: &str) -> Option<UnitCounters> {
        self.counters
            .iter()
            .find(|(u, _)| u == unit)
            .map(|(_, c)| *c)
    }

    /// Last tick covered by any span (0 for an empty trace).
    pub fn makespan_ticks(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.start + s.dur)
            .max()
            .unwrap_or(0)
    }

    /// Append every span and counter of `other`, re-homing its tracks
    /// into this trace (tick bases must agree for the result to be
    /// meaningful).
    pub fn merge(&mut self, other: &ExecutionTrace) {
        let mapped: Vec<TrackId> = other
            .tracks
            .iter()
            .map(|t| self.track(&t.process, &t.thread))
            .collect();
        for span in &other.spans {
            let mut span = span.clone();
            span.track = mapped[span.track.0];
            self.spans.push(span);
        }
        for (unit, c) in &other.counters {
            if self.unit_counters(unit).is_none() {
                self.counters.push((unit.clone(), *c));
            }
        }
    }

    /// Convert a [`BootstrapEngine`](morphling_tfhe::BootstrapEngine)
    /// worker pool's job journal into a trace (one thread track per
    /// worker, nanosecond stamps).
    pub fn from_engine_spans(spans: &[JobSpan], workers: usize) -> Self {
        let mut trace = ExecutionTrace::new(1e3);
        let mut busy_ns = 0u64;
        let mut jobs = 0u64;
        for w in 0..workers {
            // Pre-register so idle workers still show an (empty) track.
            trace.track("BootstrapEngine", &format!("worker-{w}"));
        }
        for s in spans {
            let track = trace.track("BootstrapEngine", &format!("worker-{}", s.worker));
            // Multi-value jobs extract more outputs than they rotate; make
            // that reuse visible in the span name (`job x2->x6`) and args.
            let name = if s.extractions != s.bootstraps {
                format!("job x{}->x{}", s.bootstraps, s.extractions)
            } else {
                format!("job x{}", s.bootstraps)
            };
            trace.span_with_args(
                track,
                &name,
                "engine",
                s.start.as_nanos() as u64,
                (s.dur.as_nanos() as u64).max(1),
                vec![
                    ("bootstraps".into(), s.bootstraps.to_string()),
                    ("extractions".into(), s.extractions.to_string()),
                ],
            );
            busy_ns += s.dur.as_nanos() as u64;
            jobs += 1;
        }
        trace.set_counters(
            "engine-pool",
            UnitCounters {
                instructions: jobs,
                busy: busy_ns,
                stall: 0,
                engines: workers.max(1) as u64,
            },
        );
        trace
    }

    /// Append a [`BootstrapEngine`](morphling_tfhe::BootstrapEngine)
    /// fault/recovery journal as instant-style spans on a dedicated
    /// `faults` track (nanosecond stamps — the same epoch as the job
    /// spans, so the incidents line up under the worker timelines).
    pub fn add_engine_fault_events(&mut self, events: &[FaultEvent]) {
        if events.is_empty() {
            return;
        }
        let track = self.track("BootstrapEngine", "faults");
        for e in events {
            let mut args: Vec<(String, String)> = Vec::new();
            if let Some(w) = e.worker {
                args.push(("worker".into(), w.to_string()));
            }
            match e.kind {
                FaultEventKind::WatchdogTimeout { batch, chunk_start } => {
                    args.push(("batch".into(), batch.to_string()));
                    args.push(("chunk_start".into(), chunk_start.to_string()));
                }
                FaultEventKind::OutputCheckFailed { index } => {
                    args.push(("index".into(), index.to_string()));
                }
                FaultEventKind::Retry {
                    chunk_start,
                    attempt,
                } => {
                    args.push(("chunk_start".into(), chunk_start.to_string()));
                    args.push(("attempt".into(), attempt.to_string()));
                }
                _ => {}
            }
            self.span_with_args(
                track,
                e.kind.label(),
                "fault",
                e.at.as_nanos() as u64,
                1,
                args,
            );
        }
    }

    /// Convert an engine's full journal — job spans *and* fault events —
    /// into one trace: worker tracks from
    /// [`from_engine_spans`](Self::from_engine_spans) plus a `faults`
    /// track carrying every recovery incident.
    pub fn from_engine(spans: &[JobSpan], events: &[FaultEvent], workers: usize) -> Self {
        let mut trace = Self::from_engine_spans(spans, workers);
        trace.add_engine_fault_events(events);
        trace
    }

    /// Append a [`Dispatcher`](morphling_tfhe::Dispatcher) request
    /// journal: one `queue` track span per request (its time waiting for
    /// a batch), one `execute` track span per micro-batch (deduplicated
    /// by batch id), nanosecond stamps measured from the dispatcher's
    /// epoch. Merge with an engine trace from the same run to see batch
    /// formation sitting above the worker-pool timeline.
    pub fn add_dispatch_spans(&mut self, spans: &[DispatchSpan]) {
        if spans.is_empty() {
            return;
        }
        let queue = self.track("Dispatcher", "queue");
        let execute = self.track("Dispatcher", "execute");
        let mut queued_ns = 0u64;
        let mut exec_ns = 0u64;
        let mut seen_batches: Vec<u64> = Vec::new();
        for s in spans {
            self.span_with_args(
                queue,
                &format!("req {}", s.id),
                "dispatch",
                s.enqueued.as_nanos() as u64,
                (s.queued.as_nanos() as u64).max(1),
                vec![("batch".into(), s.batch.to_string())],
            );
            queued_ns += s.queued.as_nanos() as u64;
            if !seen_batches.contains(&s.batch) {
                seen_batches.push(s.batch);
                let size = spans.iter().filter(|o| o.batch == s.batch).count();
                self.span_with_args(
                    execute,
                    &format!("batch {} x{}", s.batch, size),
                    "dispatch",
                    s.exec_start.as_nanos() as u64,
                    (s.exec.as_nanos() as u64).max(1),
                    vec![("requests".into(), size.to_string())],
                );
                exec_ns += s.exec.as_nanos() as u64;
            }
        }
        self.set_counters(
            "dispatcher",
            UnitCounters {
                instructions: spans.len() as u64,
                busy: exec_ns,
                stall: queued_ns,
                engines: 1,
            },
        );
    }

    /// Build a trace holding just a dispatcher journal (nanosecond
    /// stamps), ready to [`merge`](Self::merge) with engine traces.
    pub fn from_dispatcher(spans: &[DispatchSpan]) -> Self {
        let mut trace = ExecutionTrace::new(1e3);
        trace.add_dispatch_spans(spans);
        trace
    }

    /// Append a [`ResilienceJournal`](morphling_tfhe::ResilienceJournal)
    /// timeline as instant-style spans under a `Resilience` process — one
    /// track per scope (tier, breaker, dispatcher), span names from the
    /// event labels (`retry`, `breaker_open`, `failover`, …), `cat`
    /// `"resilience"`, nanosecond stamps from the journal's epoch. Merge
    /// with dispatcher/engine traces sharing that epoch and the retries
    /// line up under the queue/execute tracks they rescued.
    pub fn add_resilience_events(&mut self, events: &[ResilienceEvent]) {
        for e in events {
            let track = self.track("Resilience", &e.scope);
            let mut args: Vec<(String, String)> = Vec::new();
            match &e.kind {
                ResilienceEventKind::Retry { attempt } => {
                    args.push(("attempt".into(), attempt.to_string()));
                }
                ResilienceEventKind::Failover { from, to } => {
                    args.push(("from".into(), from.clone()));
                    args.push(("to".into(), to.clone()));
                }
                _ => {}
            }
            self.span_with_args(
                track,
                e.kind.label(),
                "resilience",
                e.at.as_nanos() as u64,
                1,
                args,
            );
        }
    }

    /// Build a trace holding just a resilience timeline (nanosecond
    /// stamps), ready to [`merge`](Self::merge) with serving traces.
    pub fn from_resilience(events: &[ResilienceEvent]) -> Self {
        let mut trace = ExecutionTrace::new(1e3);
        trace.add_resilience_events(events);
        trace
    }

    /// Append a [`KeyStore`](morphling_tfhe::KeyStore) journal as
    /// instant-style spans under a `KeyStore` process — one track per
    /// tenant (`tenant-<id>`), span names from the event labels (`hit`,
    /// `miss`, `load`, `evict`, `pin`, `unpin`, `corrupt`), `cat`
    /// `"keystore"`, nanosecond stamps from the store's epoch. Merge with
    /// dispatcher/engine traces sharing that epoch to see key loads and
    /// evictions line up under the batches that triggered them.
    pub fn add_keystore_events(&mut self, events: &[KeyEvent]) {
        for e in events {
            let track = self.track("KeyStore", &format!("tenant-{}", e.tenant));
            let mut args: Vec<(String, String)> = Vec::new();
            match e.kind {
                KeyEventKind::Load { bytes } | KeyEventKind::Evict { bytes } => {
                    args.push(("bytes".into(), bytes.to_string()));
                }
                _ => {}
            }
            self.span_with_args(
                track,
                e.kind.label(),
                "keystore",
                e.at.as_nanos() as u64,
                1,
                args,
            );
        }
    }

    /// Build a trace holding just a key-store journal (nanosecond
    /// stamps), ready to [`merge`](Self::merge) with serving traces.
    pub fn from_keystore(events: &[KeyEvent]) -> Self {
        let mut trace = ExecutionTrace::new(1e3);
        trace.add_keystore_events(events);
        trace
    }

    /// Journal an autotune search trajectory
    /// ([`autotune`](morphling_tfhe::autotune::autotune)'s evaluated
    /// [`SearchPoint`]s, in search order) as an `Autotune` process with
    /// one `search` track: one span per candidate, 1 µs wide, at 1 µs
    /// pitch, named `wN bM` (workers/batch), `cat` `"autotune"` for
    /// feasible candidates and `"autotune_infeasible"` otherwise, with
    /// every knob and the predicted profile in the args. Loading the
    /// trace shows the search walking the config space and the feasible
    /// region lighting up.
    pub fn add_autotune_trajectory(&mut self, trajectory: &[SearchPoint]) {
        let track = self.track("Autotune", "search");
        for (i, p) in trajectory.iter().enumerate() {
            self.span_with_args(
                track,
                &format!("w{} b{}", p.workers, p.max_batch_size),
                if p.feasible {
                    "autotune"
                } else {
                    "autotune_infeasible"
                },
                i as u64,
                1,
                vec![
                    ("workers".into(), p.workers.to_string()),
                    ("max_batch_size".into(), p.max_batch_size.to_string()),
                    ("max_linger_us".into(), p.max_linger.as_micros().to_string()),
                    ("queue_capacity".into(), p.queue_capacity.to_string()),
                    (
                        "deadline_slack_us".into(),
                        p.deadline_slack.as_micros().to_string(),
                    ),
                    (
                        "predicted_p99_us".into(),
                        p.predicted.p99.as_micros().to_string(),
                    ),
                    (
                        "predicted_throughput_bs".into(),
                        format!("{:.1}", p.predicted.throughput_bs),
                    ),
                    (
                        "mean_batch_size".into(),
                        format!("{:.2}", p.predicted.mean_batch_size),
                    ),
                    ("shed".into(), p.predicted.shed.to_string()),
                    ("expired".into(), p.predicted.expired.to_string()),
                    ("feasible".into(), p.feasible.to_string()),
                ],
            );
        }
    }

    /// Build a trace holding just an autotune run's search trajectory
    /// (microsecond ticks, one candidate per tick), ready to
    /// [`merge`](Self::merge) with serving traces from the validation
    /// replay.
    pub fn from_autotune(report: &AutotuneReport) -> Self {
        let mut trace = ExecutionTrace::new(1.0);
        trace.add_autotune_trajectory(&report.trajectory);
        trace
    }

    /// Serialize as Chrome trace-event JSON (the `traceEvents` array
    /// format), loadable in `chrome://tracing` and Perfetto. Counters are
    /// attached as instant metadata events so they survive the export.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push_event = |out: &mut String, body: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(body);
        };
        for (i, t) in self.tracks.iter().enumerate() {
            push_event(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{i},\"tid\":{i},\"name\":\"process_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(&t.process)
                ),
            );
            push_event(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{i},\"tid\":{i},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(&t.thread)
                ),
            );
        }
        for span in &self.spans {
            let pid = span.track.0;
            let ts = span.start as f64 / self.ticks_per_us;
            let dur = span.dur as f64 / self.ticks_per_us;
            let mut body = format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{pid},\"name\":{},\"cat\":{},\
                 \"ts\":{ts:.4},\"dur\":{dur:.4}",
                json_string(&span.name),
                json_string(&span.cat),
            );
            if !span.args.is_empty() {
                body.push_str(",\"args\":{");
                for (i, (k, v)) in span.args.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    let _ = write!(body, "{}:{}", json_string(k), json_string(v));
                }
                body.push('}');
            }
            body.push('}');
            push_event(&mut out, &body);
        }
        for (unit, c) in &self.counters {
            push_event(
                &mut out,
                &format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"s\":\"g\",\"ts\":0,\
                     \"name\":{},\"args\":{{\"instructions\":{},\"busy_ticks\":{},\
                     \"stall_ticks\":{},\"engines\":{}}}}}",
                    json_string(&format!("counters/{unit}")),
                    c.instructions,
                    c.busy,
                    c.stall,
                    c.engines
                ),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string as a JSON string literal (with surrounding quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tracks_deduplicate_and_spans_accumulate() {
        let mut t = ExecutionTrace::new(1.0);
        let a = t.track("sched", "XPU");
        let b = t.track("sched", "XPU");
        assert_eq!(a, b);
        t.span(a, "BR", "xpu", 10, 5);
        t.span(a, "BR", "xpu", 20, 5);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.makespan_ticks(), 25);
    }

    #[test]
    fn counters_report_normalized_utilization() {
        let c = UnitCounters {
            instructions: 4,
            busy: 100,
            stall: 10,
            engines: 2,
        };
        assert!((c.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(UnitCounters::default().utilization(0), 0.0);
    }

    #[test]
    fn chrome_json_is_well_formed_and_escaped() {
        let mut t = ExecutionTrace::new(2.0);
        let track = t.track("sched \"quoted\"", "XPU");
        t.span_with_args(
            track,
            "BR\n@g0",
            "xpu",
            4,
            2,
            vec![("stall".into(), "none".into())],
        );
        t.set_counters(
            "XPU",
            UnitCounters {
                instructions: 1,
                busy: 2,
                stall: 0,
                engines: 1,
            },
        );
        let json = t.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("BR\\n@g0"));
        assert!(json.contains("\"ts\":2.0000")); // 4 ticks at 2 ticks/us
        assert!(json.contains("counters/XPU"));
        // Balanced braces/brackets — a cheap structural sanity check that
        // catches missed commas or unterminated objects.
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn merge_rehomes_tracks() {
        let mut a = ExecutionTrace::new(1.0);
        let ta = a.track("p", "t1");
        a.span(ta, "x", "c", 0, 1);
        let mut b = ExecutionTrace::new(1.0);
        let tb = b.track("p", "t2");
        b.span(tb, "y", "c", 5, 1);
        a.merge(&b);
        assert_eq!(a.spans().len(), 2);
        assert_eq!(a.makespan_ticks(), 6);
    }

    #[test]
    fn engine_spans_become_worker_tracks() {
        let spans = vec![
            JobSpan {
                worker: 0,
                start: Duration::from_nanos(100),
                dur: Duration::from_nanos(50),
                bootstraps: 3,
                extractions: 3,
            },
            JobSpan {
                worker: 1,
                start: Duration::from_nanos(120),
                dur: Duration::from_nanos(40),
                bootstraps: 2,
                extractions: 6,
            },
        ];
        let trace = ExecutionTrace::from_engine_spans(&spans, 2);
        assert_eq!(trace.spans().len(), 2);
        let pool = trace.unit_counters("engine-pool").unwrap();
        assert_eq!(pool.instructions, 2);
        assert_eq!(pool.busy, 90);
        assert_eq!(pool.engines, 2);
        // Plain jobs render `job xN`; multi-value jobs expose the fan-out.
        assert_eq!(trace.spans()[0].name, "job x3");
        assert_eq!(trace.spans()[1].name, "job x2->x6");
        assert!(trace.spans()[1]
            .args
            .iter()
            .any(|(k, v)| k == "extractions" && v == "6"));
    }

    #[test]
    fn dispatch_spans_become_queue_and_batch_tracks() {
        use morphling_tfhe::DispatchSpan;
        // Two requests coalesced into batch 0, one alone in batch 1.
        let spans = vec![
            DispatchSpan {
                id: 1,
                batch: 0,
                enqueued: Duration::from_nanos(100),
                queued: Duration::from_nanos(50),
                exec_start: Duration::from_nanos(150),
                exec: Duration::from_nanos(200),
            },
            DispatchSpan {
                id: 2,
                batch: 0,
                enqueued: Duration::from_nanos(120),
                queued: Duration::from_nanos(30),
                exec_start: Duration::from_nanos(150),
                exec: Duration::from_nanos(200),
            },
            DispatchSpan {
                id: 3,
                batch: 1,
                enqueued: Duration::from_nanos(400),
                queued: Duration::from_nanos(10),
                exec_start: Duration::from_nanos(410),
                exec: Duration::from_nanos(90),
            },
        ];
        let trace = ExecutionTrace::from_dispatcher(&spans);
        // 3 queue spans + 2 batch execution spans.
        assert_eq!(trace.spans().len(), 5);
        let d = trace.unit_counters("dispatcher").unwrap();
        assert_eq!(d.instructions, 3);
        assert_eq!(d.busy, 290);
        assert_eq!(d.stall, 90);
        let json = trace.to_chrome_json();
        assert!(json.contains("\"Dispatcher\""));
        assert!(json.contains("batch 0 x2"));
    }

    #[test]
    fn fault_events_land_on_their_own_track() {
        let spans = vec![JobSpan {
            worker: 0,
            start: Duration::from_nanos(100),
            dur: Duration::from_nanos(50),
            bootstraps: 3,
            extractions: 3,
        }];
        let events = vec![
            FaultEvent {
                at: Duration::from_nanos(110),
                worker: Some(0),
                kind: FaultEventKind::WorkerPanic,
            },
            FaultEvent {
                at: Duration::from_nanos(130),
                worker: None,
                kind: FaultEventKind::Retry {
                    chunk_start: 4,
                    attempt: 1,
                },
            },
        ];
        let trace = ExecutionTrace::from_engine(&spans, &events, 1);
        assert_eq!(trace.spans().len(), 3);
        let faults: Vec<_> = trace.spans().iter().filter(|s| s.cat == "fault").collect();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].name, "worker_panic");
        assert!(faults[1]
            .args
            .iter()
            .any(|(k, v)| k == "attempt" && v == "1"));
        let json = trace.to_chrome_json();
        assert!(json.contains("\"fault\""));
        // An empty journal adds nothing — zero-fault traces stay identical.
        let mut clean = ExecutionTrace::from_engine_spans(&spans, 1);
        let before = clean.spans().len();
        clean.add_engine_fault_events(&[]);
        assert_eq!(clean.spans().len(), before);
    }

    #[test]
    fn keystore_events_land_on_per_tenant_tracks() {
        let events = vec![
            KeyEvent {
                at: Duration::from_nanos(100),
                tenant: 1,
                kind: KeyEventKind::Miss,
            },
            KeyEvent {
                at: Duration::from_nanos(250),
                tenant: 1,
                kind: KeyEventKind::Load { bytes: 4096 },
            },
            KeyEvent {
                at: Duration::from_nanos(300),
                tenant: 2,
                kind: KeyEventKind::Evict { bytes: 4096 },
            },
        ];
        let trace = ExecutionTrace::from_keystore(&events);
        assert_eq!(trace.spans().len(), 3);
        assert!(trace.spans().iter().all(|s| s.cat == "keystore"));
        let names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["miss", "load", "evict"]);
        assert!(trace.spans()[1]
            .args
            .iter()
            .any(|(k, v)| k == "bytes" && v == "4096"));
        let json = trace.to_chrome_json();
        assert!(json.contains("\"KeyStore\""));
        assert!(json.contains("tenant-1"));
        assert!(json.contains("tenant-2"));
        // Keystore events merge onto the shared timeline with dispatch
        // spans, sharing the nanosecond base.
        let mut merged = ExecutionTrace::from_keystore(&events);
        merged.add_dispatch_spans(&[DispatchSpan {
            id: 1,
            batch: 0,
            enqueued: Duration::from_nanos(50),
            queued: Duration::from_nanos(40),
            exec_start: Duration::from_nanos(90),
            exec: Duration::from_nanos(60),
        }]);
        assert!(merged.spans().iter().any(|s| s.cat == "dispatch"));
        assert!(merged.spans().iter().any(|s| s.cat == "keystore"));
    }

    #[test]
    fn resilience_events_land_on_per_scope_tracks() {
        let events = vec![
            ResilienceEvent {
                at: Duration::from_nanos(100),
                scope: "dispatcher".into(),
                kind: ResilienceEventKind::Retry { attempt: 1 },
            },
            ResilienceEvent {
                at: Duration::from_nanos(200),
                scope: "engine".into(),
                kind: ResilienceEventKind::BreakerOpen,
            },
            ResilienceEvent {
                at: Duration::from_nanos(300),
                scope: "fallback".into(),
                kind: ResilienceEventKind::Failover {
                    from: "engine".into(),
                    to: "fallback".into(),
                },
            },
        ];
        let trace = ExecutionTrace::from_resilience(&events);
        assert_eq!(trace.spans().len(), 3);
        assert!(trace.spans().iter().all(|s| s.cat == "resilience"));
        let names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["retry", "breaker_open", "failover"]);
        assert!(trace.spans()[2]
            .args
            .iter()
            .any(|(k, v)| k == "from" && v == "engine"));
        let json = trace.to_chrome_json();
        assert!(json.contains("\"resilience\""));
        assert!(json.contains("\"Resilience\""));
        // Merging with a dispatch trace keeps both categories.
        let mut merged = ExecutionTrace::from_resilience(&events);
        merged.add_dispatch_spans(&[DispatchSpan {
            id: 1,
            batch: 0,
            enqueued: Duration::from_nanos(50),
            queued: Duration::from_nanos(40),
            exec_start: Duration::from_nanos(90),
            exec: Duration::from_nanos(60),
        }]);
        assert!(merged.spans().iter().any(|s| s.cat == "dispatch"));
        assert!(merged.spans().iter().any(|s| s.cat == "resilience"));
    }
}
