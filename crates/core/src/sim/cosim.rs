//! Functional + timed co-simulation: execute a *real* programmable
//! bootstrap through the XPU's dataflow — double-pointer rotator reads,
//! decomposition, merge-split forward FFT, VPE multiply-accumulate in the
//! transform domain, paired IFFT — while charging cycles from the
//! iteration profile. The result is verified bit-for-bit against the
//! reference TFHE engine by the tests, which is the strongest form of
//! "the simulator models the machine that computes the right answer".

use morphling_tfhe::{
    modulus_switch, sample_extract, BootstrapKey, ExternalProductEngine, GlweCiphertext, Lut,
    LweCiphertext, TfheParams,
};

use crate::config::ArchConfig;
use crate::sim::buffers::RotatorBuffer;
use crate::sim::xpu::IterProfile;

/// The outcome of one co-simulated bootstrap.
#[derive(Clone, Debug)]
pub struct CosimResult {
    /// The extracted LWE ciphertext (under the `k·N` key; key switching is
    /// the VPU's job and uses the ordinary functional path).
    pub extracted: LweCiphertext,
    /// Cycles charged to the XPU pipeline (`n × iter_cycles` — every
    /// iteration streams through the pipeline even when `ã_i = 0`).
    pub xpu_cycles: u64,
    /// Blind-rotation iterations executed functionally (those with
    /// `ã_i ≠ 0`).
    pub active_iterations: u64,
}

impl CosimResult {
    /// XPU time in seconds at the configured clock.
    pub fn xpu_seconds(&self, config: &ArchConfig) -> f64 {
        self.xpu_cycles as f64 / config.clock_hz()
    }
}

/// The co-simulator: one XPU slice running one ciphertext's blind rotation
/// with the hardware dataflow.
#[derive(Debug)]
pub struct XpuCosim {
    config: ArchConfig,
    engine: ExternalProductEngine,
}

impl XpuCosim {
    /// Build a co-simulator for `config` at `params`' polynomial size.
    pub fn new(config: ArchConfig, params: &TfheParams) -> Self {
        let engine = ExternalProductEngine::new(params).with_merge_split(config.merge_split);
        Self { config, engine }
    }

    /// Run modulus switch → blind rotation → sample extraction through the
    /// hardware dataflow, charging cycles.
    ///
    /// # Panics
    ///
    /// Panics on parameter mismatches between `ct`, `bsk` and `params`.
    pub fn bootstrap_no_ks(
        &self,
        params: &TfheParams,
        bsk: &BootstrapKey,
        ct: &LweCiphertext,
        lut: &Lut,
    ) -> CosimResult {
        assert_eq!(ct.dim(), params.lwe_dim, "ciphertext dimension mismatch");
        assert_eq!(
            bsk.lwe_dim(),
            params.lwe_dim,
            "bootstrap key dimension mismatch"
        );
        let profile = IterProfile::compute(&self.config, params);
        let iter_cycles = profile.iter_cycles();

        // VPU: modulus switch.
        let (mask, b_tilde) = modulus_switch(ct, params.two_n());

        // Initial accumulator: the LWE-mask unit rotates the test
        // polynomial by −b̃ through the banked rotator.
        let comps: Vec<_> = GlweCiphertext::trivial(lut.polynomial().clone(), params.glwe_dim)
            .components()
            .map(|poly| {
                RotatorBuffer::store(poly, self.config.lanes).read_rotated(-(b_tilde as i64))
            })
            .collect();
        let mut acc = GlweCiphertext::from_components(comps);

        // Blind rotation: n iterations through the XPU pipeline. BSK_i is
        // streamed for every iteration; iterations with ã_i = 0 still flow
        // through the pipeline (and are functional no-ops).
        let mut active = 0u64;
        for (i, &a_tilde) in mask.iter().enumerate() {
            if a_tilde != 0 {
                // ptrA/ptrB: both reads come from the banked Private-A1
                // image of the accumulator; the subtractor in front of the
                // decomposition unit forms Λ = X^ã·ACC − ACC.
                let lambda_comps: Vec<_> = acc
                    .components()
                    .map(|poly| {
                        RotatorBuffer::store(poly, self.config.lanes)
                            .read_rotated_minus_orig(a_tilde as i64)
                    })
                    .collect();
                let lambda = GlweCiphertext::from_components(lambda_comps);
                // Decompose → forward transforms (merge-split pairs) → VPE
                // MACs with the transform-domain BSK → paired IFFTs.
                let delta = self.engine.external_product(bsk.fourier(i), &lambda);
                acc = acc.add(&delta);
                active += 1;
            }
        }

        // SE: data movement only.
        let extracted = sample_extract(&acc);
        CosimResult {
            extracted,
            xpu_cycles: params.lwe_dim as u64 * iter_cycles,
            active_iterations: active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_tfhe::{ClientKey, MulBackend, ParamSet, ServerKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cosim_matches_the_reference_engine_and_counts_cycles() {
        let mut rng = StdRng::seed_from_u64(500);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::with_backend(&ck, MulBackend::Fft, &mut rng);
        let cfg = ArchConfig::morphling_default();
        let cosim = XpuCosim::new(cfg.clone(), &params);
        let lut = Lut::from_fn(params.poly_size, 4, |m| (3 * m) % 4);

        for m in 0..4u64 {
            let ct = ck.encrypt(m, &mut rng);
            let result = cosim.bootstrap_no_ks(&params, sk.bootstrap_key(), &ct, &lut);
            // Functional equivalence with the reference path, bit for bit.
            let reference = sk.programmable_bootstrap_no_ks(&ct, &lut);
            assert_eq!(result.extracted, reference, "m={m}");
            // Timing: exactly n iterations of the profiled pipeline.
            let profile = IterProfile::compute(&cfg, &params);
            assert_eq!(
                result.xpu_cycles,
                params.lwe_dim as u64 * profile.iter_cycles()
            );
            // And the key-switched result decodes correctly.
            let out = sk.key_switch_key().key_switch(&result.extracted);
            assert_eq!(ck.decrypt(&out), (3 * m) % 4, "m={m}");
        }
    }

    #[test]
    fn cosim_charges_cycles_even_for_zero_rotations() {
        let mut rng = StdRng::seed_from_u64(501);
        let params = ParamSet::Test.params();
        let ck = ClientKey::generate(params.clone(), &mut rng);
        let sk = ServerKey::new(&ck, &mut rng);
        let cosim = XpuCosim::new(ArchConfig::morphling_default(), &params);
        let lut = Lut::identity(params.poly_size, 4);
        let ct = ck.encrypt(1, &mut rng);
        let r = cosim.bootstrap_no_ks(&params, sk.bootstrap_key(), &ct, &lut);
        // Some mask exponents are zero with probability ≈ 1/2N each; the
        // cycle count must not depend on them.
        assert!(r.active_iterations <= params.lwe_dim as u64);
        assert_eq!(
            r.xpu_cycles,
            params.lwe_dim as u64
                * IterProfile::compute(&ArchConfig::morphling_default(), &params).iter_cycles()
        );
    }
}
