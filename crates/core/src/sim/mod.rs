//! The cycle-accurate Morphling simulator.
//!
//! The simulator models the steady-state pipeline of §IV–V at iteration
//! granularity with explicit per-resource occupancy:
//!
//! - **XPU** ([`xpu`]): per blind-rotation iteration, the decomposition
//!   units, forward-FFT units (with or without merge-split), the VPE array,
//!   and the IFFT units each have an occupancy in cycles; the iteration
//!   period is their maximum (the pipeline is fully overlapped, as the
//!   streaming architecture intends).
//! - **Buffers** ([`buffers`]): Private-A1 capacity determines how many
//!   consecutive ACC streams can share one BSK fetch (§IV-C's third reuse
//!   level); the double-pointer rotator is modeled functionally.
//! - **HBM** ([`hbm`]): BSK traffic is multicast per 4-XPU cluster and
//!   amortized over the batched streams; demand beyond the XPU-priority
//!   channels stalls the pipeline.
//! - **VPU** ([`vpu`]): modulus switch, sample extraction and key switch
//!   cycles; the VPU runs decoupled through the Shared buffer, so it
//!   bounds throughput only if its utilization exceeds 1.
//!
//! [`Simulator::bootstrap_batch`] combines these into the latency /
//! throughput / breakdown report used by every evaluation experiment.

pub mod buffers;
pub mod cosim;
mod engine;
pub mod hbm;
pub mod vpu;
pub mod xpu;

pub use buffers::RotatorBuffer;
pub use cosim::{CosimResult, XpuCosim};
pub use engine::{Bottleneck, SimReport, Simulator};
pub use xpu::IterProfile;

pub use crate::faults::{SimFaultEvent, SimFaultKind, SimFaultPlan};
