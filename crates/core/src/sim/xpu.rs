//! XPU pipeline occupancy per blind-rotation iteration (§V-A).

use morphling_tfhe::TfheParams;

use crate::config::ArchConfig;

/// Per-iteration occupancy (in cycles) of each XPU resource, for one XPU
/// processing `vpe_rows` ciphertexts concurrently.
///
/// The steady-state iteration period is the maximum occupancy: Morphling
/// is a streaming design where the double-pointer rotator keeps a constant
/// stream flowing into the pipelined FFT (§V-C), so no resource idles
/// waiting for another in steady state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterProfile {
    /// Private-A1 read + rotate occupancy. One physical read serves both
    /// pointers (the rotated view is the same data re-ordered), so the
    /// rotator streams each ACC component once.
    pub rotator: u64,
    /// Decomposition-unit occupancy (dual-ported: ptrA and ptrB streams).
    pub decompose: u64,
    /// Forward-FFT occupancy (merge-split carries 2 polys per pass).
    pub fft: u64,
    /// VPE-array occupancy (pointwise multiply-accumulate passes).
    pub vpe: u64,
    /// Inverse-FFT occupancy.
    pub ifft: u64,
    /// Transform-domain BSK bytes consumed per iteration (per multicast
    /// cluster).
    pub bsk_bytes: u64,
}

impl IterProfile {
    /// Compute the profile for one XPU under `config` running `params`.
    pub fn compute(config: &ArchConfig, params: &TfheParams) -> Self {
        let rows = config.vpe_rows as u64;
        let k1 = (params.glwe_dim + 1) as u64;
        let l_b = params.bsk_decomp.level() as u64;
        let big_n = params.poly_size as u64;
        let lanes = config.lanes as u64;

        // A transform pass streams N/2 complex points at `lanes` per cycle.
        let pass = big_n / 2 / lanes;
        let ms_fwd = if config.merge_split { 2 } else { 1 };
        // Output reuse implies transform-domain accumulation, where the
        // merged inverse also applies; without output reuse each product is
        // inverse-transformed separately (still mergeable in pairs).
        let ms_inv = ms_fwd;

        let fwd_polys = rows
            * config
                .reuse
                .forward_transforms_per_iter(params.glwe_dim, params.bsk_decomp.level());
        let inv_polys = rows
            * config
                .reuse
                .inverse_transforms_per_iter(params.glwe_dim, params.bsk_decomp.level());

        let fft = div_ceil(fwd_polys, config.ffts_per_xpu as u64 * ms_fwd) * pass;
        let ifft = div_ceil(inv_polys, config.iffts_per_xpu as u64 * ms_inv) * pass;

        // Every (digit, BSK-column) pair is one pointwise pass on one VPE.
        let products = rows * k1 * k1 * l_b;
        let vpe = div_ceil(products, config.vpes_per_xpu() as u64) * pass;

        // The decomposition unit reads both pointer streams (2 × lanes
        // coefficients per cycle) and emits all l_b digit streams by
        // bit-slicing, so its occupancy is source-polynomial bound.
        let src_polys = rows * k1;
        let decompose =
            div_ceil(src_polys, config.decomp_units_per_xpu as u64) * (big_n / (2 * lanes));

        // One physical A1 read per ACC coefficient serves both pointers;
        // each bank's port is two vectors wide (the ptrA/ptrB pair), i.e.
        // 2×lanes coefficients per cycle — "maintaining a constant data
        // stream to pipelined-FFT on each cycle" (§V-C).
        let banks_per_xpu = (16 / config.xpus.clamp(1, 16)).max(1) as u64;
        let rotator = src_polys * big_n / (banks_per_xpu * 2 * lanes);

        // BSK_i in the transform domain: (k+1)·l_b × (k+1) polynomials at
        // N/2 points × 8 bytes.
        let bsk_bytes = k1 * l_b * k1 * (big_n / 2) * 8;

        Self {
            rotator,
            decompose,
            fft,
            vpe,
            ifft,
            bsk_bytes,
        }
    }

    /// The steady-state iteration period: the busiest resource.
    pub fn iter_cycles(&self) -> u64 {
        self.rotator
            .max(self.decompose)
            .max(self.fft)
            .max(self.vpe)
            .max(self.ifft)
    }

    /// Which resource bounds the iteration (for reports).
    pub fn bottleneck(&self) -> &'static str {
        let m = self.iter_cycles();
        if m == self.fft {
            "fft"
        } else if m == self.vpe {
            "vpe"
        } else if m == self.ifft {
            "ifft"
        } else if m == self.rotator {
            "rotator"
        } else {
            "decompose"
        }
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::ReuseMode;
    use morphling_tfhe::ParamSet;

    fn profile(set: ParamSet) -> IterProfile {
        IterProfile::compute(&ArchConfig::morphling_default(), &set.params())
    }

    #[test]
    fn set_i_iteration_is_256_cycles_fft_bound() {
        // The number that yields Table V's 0.11 ms: 4 ct × 4 digit polys
        // over 2 merge-split FFTs = 4 passes × 64 cycles.
        let p = profile(ParamSet::I);
        assert_eq!(p.fft, 256);
        assert_eq!(p.iter_cycles(), 256);
        assert_eq!(p.bottleneck(), "fft");
    }

    #[test]
    fn paper_sets_iteration_periods() {
        // Derived in DESIGN.md §2 from Table V latencies.
        assert_eq!(profile(ParamSet::II).iter_cycles(), 384);
        assert_eq!(profile(ParamSet::III).iter_cycles(), 768);
        assert_eq!(profile(ParamSet::IV).iter_cycles(), 256);
        assert_eq!(profile(ParamSet::A).iter_cycles(), 512);
    }

    #[test]
    fn bsk_bytes_per_iteration() {
        // Set I: 8 polynomials × 4 KiB = 32 KiB.
        assert_eq!(profile(ParamSet::I).bsk_bytes, 32 * 1024);
    }

    #[test]
    fn no_reuse_needs_more_fft_time() {
        let cfg = ArchConfig::morphling_default();
        let params = ParamSet::C.params();
        let io = IterProfile::compute(&cfg, &params);
        let none = IterProfile::compute(
            &cfg.clone()
                .with_reuse(ReuseMode::NoReuse)
                .with_merge_split(false),
            &params,
        );
        assert!(none.iter_cycles() > 4 * io.iter_cycles());
    }

    #[test]
    fn merge_split_halves_fft_occupancy() {
        let cfg = ArchConfig::morphling_default();
        let params = ParamSet::B.params();
        let with = IterProfile::compute(&cfg, &params);
        let without = IterProfile::compute(&cfg.with_merge_split(false), &params);
        assert_eq!(without.fft, 2 * with.fft);
    }

    #[test]
    fn vpe_occupancy_counts_all_products() {
        // Set C: 4 rows × 48 products = 192 over 16 VPEs = 12 passes × 32.
        let p = profile(ParamSet::C);
        assert_eq!(p.vpe, 12 * 32);
    }
}
