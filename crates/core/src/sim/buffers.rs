//! On-chip buffer models (§V-C): capacity-derived stream batching and the
//! Private-A1 double-pointer rotator.

use morphling_math::{Polynomial, Torus32};
use morphling_tfhe::TfheParams;

use crate::config::ArchConfig;

/// How many consecutive ACC streams fit in Private-A1, bounded by
/// [`ArchConfig::max_stream_batch`]. Each stream needs, per in-flight
/// ciphertext, the ACC itself plus its ping-pong copy, the staging area for
/// the next group, and its LWE masks — modeled as `4 × acc_bytes` (the
/// factor that places the paper's Fig 8-a knee at 4096 KiB for set A).
pub fn stream_batch_depth(config: &ArchConfig, params: &TfheParams) -> usize {
    // Non-output-stationary dataflows spill transform-domain partial sums
    // to Private-A1, doubling the per-ACC footprint (§IV-B).
    let per_ct = params.acc_bytes() * 4 * config.dataflow.acc_bytes_factor();
    let per_stream = config.bootstrap_cores() as u64 * per_ct;
    let fit = (config.private_a1_kb as u64 * 1024) / per_stream.max(1);
    (fit as usize).clamp(1, config.max_stream_batch)
}

/// Bytes of Private-A2 needed to double-buffer one `BSK_i` (the prefetch
/// window of §V-C).
pub fn a2_window_bytes(params: &TfheParams) -> u64 {
    2 * params.bsk_iter_bytes_fourier()
}

/// Functional model of the Private-A1 **double-pointer rotator** (§V-C).
///
/// The buffer stores ACC polynomials banked `lanes` coefficients wide.
/// A rotation `X^ã · p` is served by a second read pointer plus the
/// reorder unit (for unaligned `ã`) and conditional negation (for the
/// negacyclic wrap) — no data is ever moved. `read_rotated` reproduces the
/// address generation the LWE-mask unit performs and is validated against
/// the algebraic rotation.
#[derive(Clone, Debug)]
pub struct RotatorBuffer {
    /// Coefficients, stored bank-major exactly as written.
    data: Vec<Torus32>,
    lanes: usize,
}

impl RotatorBuffer {
    /// Store a polynomial into the banked buffer.
    pub fn store(poly: &Polynomial<Torus32>, lanes: usize) -> Self {
        assert!(
            lanes >= 1 && poly.len().is_multiple_of(lanes),
            "lanes must divide the polynomial size"
        );
        Self {
            data: poly.coeffs().to_vec(),
            lanes,
        }
    }

    /// Polynomial size `N`.
    pub fn poly_len(&self) -> usize {
        self.data.len()
    }

    /// Read through the first pointer: the original polynomial (ptrA).
    pub fn read(&self) -> Polynomial<Torus32> {
        Polynomial::from_coeffs(self.data.clone())
    }

    /// Read through the second pointer: `X^power · p` (ptrB). The address
    /// unit walks the banks starting at `-power`, and the reorder unit
    /// aligns unaligned vector accesses; coefficients crossing the `X^N`
    /// boundary are negated on the fly.
    pub fn read_rotated(&self, power: i64) -> Polynomial<Torus32> {
        let n = self.data.len() as i64;
        let two_n = 2 * n;
        let a = power.rem_euclid(two_n);
        let mut out = Vec::with_capacity(self.data.len());
        // Hardware streams output vectors of `lanes` coefficients; the
        // source index for output j is (j - a) mod 2N with negacyclic sign.
        for group in 0..(self.data.len() / self.lanes) {
            for lane in 0..self.lanes {
                let j = (group * self.lanes + lane) as i64;
                let src = (j - a).rem_euclid(two_n);
                let (idx, negate) = if src < n {
                    (src as usize, false)
                } else {
                    ((src - n) as usize, true)
                };
                let v = self.data[idx];
                out.push(if negate { -v } else { v });
            }
        }
        Polynomial::from_coeffs(out)
    }

    /// Fused `X^power · p − p` — the external product operand, produced by
    /// streaming both pointers into the subtractor in front of the
    /// decomposition unit.
    pub fn read_rotated_minus_orig(&self, power: i64) -> Polynomial<Torus32> {
        let rotated = self.read_rotated(power);
        &rotated - &self.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_tfhe::ParamSet;

    fn poly(n: usize) -> Polynomial<Torus32> {
        Polynomial::from_fn(n, |j| {
            Torus32::from_raw((j as u32).wrapping_mul(0x9E37_79B9))
        })
    }

    #[test]
    fn rotated_read_matches_algebraic_rotation() {
        let p = poly(64);
        let buf = RotatorBuffer::store(&p, 8);
        for a in [0i64, 1, 7, 8, 63, 64, 65, 100, 127, 128] {
            assert_eq!(buf.read_rotated(a), p.monomial_mul(a), "a={a}");
        }
    }

    #[test]
    fn fused_rotate_subtract_matches() {
        let p = poly(32);
        let buf = RotatorBuffer::store(&p, 8);
        for a in [1i64, 13, 40, 63] {
            assert_eq!(
                buf.read_rotated_minus_orig(a),
                p.monomial_mul_minus_one(a),
                "a={a}"
            );
        }
    }

    #[test]
    fn unaligned_rotations_are_supported() {
        // ã is arbitrary in [0, 2N); the reorder unit handles non-multiples
        // of the vector width.
        let p = poly(64);
        let buf = RotatorBuffer::store(&p, 8);
        for a in 0..128i64 {
            assert_eq!(buf.read_rotated(a), p.monomial_mul(a), "a={a}");
        }
    }

    #[test]
    fn default_config_batches_four_streams() {
        let cfg = ArchConfig::morphling_default();
        assert_eq!(stream_batch_depth(&cfg, &ParamSet::I.params()), 4);
        assert_eq!(stream_batch_depth(&cfg, &ParamSet::III.params()), 4);
        // Set A's 32 KiB ACCs: exactly 2 streams at 4096 KiB.
        assert_eq!(stream_batch_depth(&cfg, &ParamSet::A.params()), 2);
    }

    #[test]
    fn small_a1_reduces_batching() {
        let cfg = ArchConfig::morphling_default().with_private_a1_kb(1024);
        assert_eq!(stream_batch_depth(&cfg, &ParamSet::A.params()), 1);
    }

    #[test]
    fn a2_window_holds_two_bsk_iterations() {
        let params = ParamSet::I.params();
        assert_eq!(a2_window_bytes(&params), 2 * 32 * 1024);
        // The paper's 4 MiB Private-A2 easily covers the window.
        let cfg = ArchConfig::morphling_default();
        assert!(a2_window_bytes(&params) <= cfg.private_a2_kb as u64 * 1024);
    }
}
