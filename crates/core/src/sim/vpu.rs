//! VPU cost model: the memory-intensive stages (MS, SE, KS) plus P-ALU
//! vector work (§V-B).

use morphling_tfhe::TfheParams;

use crate::config::ArchConfig;

/// Per-ciphertext VPU work, in MAC-equivalent operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VpuCost {
    /// Modulus switching: one multiply-round per mask element + body.
    pub mod_switch_macs: u64,
    /// Sample extraction: pure data movement (words moved, not MACs).
    pub sample_extract_words: u64,
    /// Key switching: `kN · l_k` digit×LWE accumulations of `n+1` words.
    pub key_switch_macs: u64,
}

impl VpuCost {
    /// Compute the per-bootstrap VPU work for `params`.
    pub fn compute(params: &TfheParams) -> Self {
        let n = params.lwe_dim as u64;
        let kn = params.extracted_lwe_dim() as u64;
        let l_k = params.ksk_decomp.level() as u64;
        Self {
            mod_switch_macs: n + 1,
            sample_extract_words: kn + 1,
            key_switch_macs: kn * l_k * (n + 1),
        }
    }

    /// Total MACs per bootstrap on the VPU.
    pub fn total_macs(&self) -> u64 {
        self.mod_switch_macs + self.key_switch_macs
    }

    /// Cycles one lane group takes for this ciphertext's KS (the paper
    /// programs each group independently, one ciphertext slot per group —
    /// this is the *latency* term of the KS stage).
    pub fn ks_latency_cycles(&self, config: &ArchConfig) -> u64 {
        let group_macs_per_cycle = (config.vpu_lanes_per_group * config.vpu_macs_per_lane) as u64;
        self.key_switch_macs.div_ceil(group_macs_per_cycle.max(1))
    }

    /// Cycles the whole VPU (all groups) needs per ciphertext — the
    /// *throughput* term.
    pub fn throughput_cycles(&self, config: &ArchConfig) -> u64 {
        self.total_macs()
            .div_ceil(config.vpu_macs_per_cycle().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_tfhe::ParamSet;

    #[test]
    fn set_i_key_switch_mac_count() {
        // kN·l_k·(n+1) = 1024·3·501.
        let c = VpuCost::compute(&ParamSet::I.params());
        assert_eq!(c.key_switch_macs, 1024 * 3 * 501);
    }

    #[test]
    fn vpu_keeps_up_with_the_xpus_on_paper_sets() {
        // The pipelined design requires VPU throughput ≥ XPU throughput:
        // per-ciphertext VPU cycles × in-flight ciphertexts must fit in one
        // blind-rotation window (§V-B "operations apart from blind rotation
        // consume only a minor portion").
        use crate::sim::xpu::IterProfile;
        let cfg = crate::ArchConfig::morphling_default();
        for set in [ParamSet::I, ParamSet::II, ParamSet::III, ParamSet::IV] {
            let params = set.params();
            let window = params.lwe_dim as u64 * IterProfile::compute(&cfg, &params).iter_cycles();
            let vpu =
                VpuCost::compute(&params).throughput_cycles(&cfg) * cfg.bootstrap_cores() as u64;
            assert!(
                vpu <= window,
                "set {}: VPU needs {vpu} cycles but the window is {window}",
                params.name
            );
        }
    }

    #[test]
    fn sample_extract_is_movement_only() {
        let c = VpuCost::compute(&ParamSet::I.params());
        assert_eq!(c.sample_extract_words, 1025);
        // SE contributes no MACs.
        assert_eq!(c.total_macs(), c.mod_switch_macs + c.key_switch_macs);
    }
}
