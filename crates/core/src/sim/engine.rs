//! The top-level simulator: combines the XPU iteration profile, buffer
//! capacity, HBM bandwidth, and VPU model into latency/throughput reports.

use morphling_tfhe::TfheParams;

use crate::config::ArchConfig;
use crate::faults::{SimFaultEvent, SimFaultKind, SimFaultPlan};
use crate::sim::buffers::stream_batch_depth;
use crate::sim::hbm::{bitflip_refetch_cycles, BandwidthDemand};
use crate::sim::vpu::VpuCost;
use crate::sim::xpu::IterProfile;
use crate::trace::ExecutionTrace;

/// Pipeline-fill overhead charged once per bootstrap (FFT fill + VPE +
/// IFFT + write-back), in cycles. Small against `n × iter_cycles`.
const PIPELINE_FILL_CYCLES: u64 = 200;

/// The Morphling performance simulator.
///
/// See the [crate-level example](crate) for a typical call.
#[derive(Clone, Debug)]
pub struct Simulator {
    config: ArchConfig,
    faults: SimFaultPlan,
}

impl Simulator {
    /// Create a simulator for one architecture configuration.
    pub fn new(config: ArchConfig) -> Self {
        Self {
            config,
            faults: SimFaultPlan::default(),
        }
    }

    /// Install a seeded transient-fault plan: sampled outages re-cost the
    /// simulated batch (the report's `fault_cycles` / `fault_events`)
    /// instead of crashing it. The default zero-rate plan leaves every
    /// report bit-identical to a fault-free run.
    #[must_use]
    pub fn with_faults(mut self, plan: SimFaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The architecture being simulated.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// The installed transient-fault plan (all-zero by default).
    pub fn fault_plan(&self) -> &SimFaultPlan {
        &self.faults
    }

    /// Per-iteration XPU resource profile for `params`.
    pub fn iteration_profile(&self, params: &TfheParams) -> IterProfile {
        IterProfile::compute(&self.config, params)
    }

    /// Simulate the steady-state execution of `n_cts` bootstrap operations
    /// (a batch; `n_cts` is rounded up to full in-flight groups).
    pub fn bootstrap_batch(&self, params: &TfheParams, n_cts: usize) -> SimReport {
        let cfg = &self.config;
        let iter = IterProfile::compute(cfg, params);
        let iter_cycles = iter.iter_cycles();
        let n = params.lwe_dim as u64;
        let cores = cfg.bootstrap_cores() as u64;

        // Stream batching from Private-A1 capacity → BSK amortization.
        let stream_batch = stream_batch_depth(cfg, params);

        // Raw (compute-bound) throughput, before memory stalls.
        let raw_throughput = cores as f64 / (n as f64 * iter_cycles as f64 / cfg.clock_hz());

        // Memory stall.
        let demand =
            BandwidthDemand::compute(cfg, params, iter_cycles, stream_batch, raw_throughput);
        let mem_stall = demand.stall_factor(cfg);

        // VPU throughput bound: all in-flight ciphertexts must key-switch
        // within one blind-rotation window.
        let vpu = VpuCost::compute(params);
        let window = n * iter_cycles;
        let vpu_utilization = (vpu.throughput_cycles(cfg) * cores) as f64 / window as f64;

        let stall = mem_stall.max(vpu_utilization).max(1.0);

        // Latency: the blind rotation (stalled), plus the serial MS / SE /
        // KS stages for one ciphertext (KS on one VPU lane group).
        let br_cycles = (n as f64 * iter_cycles as f64 * stall).round() as u64;
        let ms_cycles = vpu
            .mod_switch_macs
            .div_ceil(cfg.vpu_macs_per_cycle().max(1))
            .max(1);
        let se_cycles = vpu
            .sample_extract_words
            .div_ceil((cfg.lanes * cfg.vpu_groups) as u64)
            .max(1);
        let ks_cycles = vpu.ks_latency_cycles(cfg);

        // Transient component outages: sampled deterministically from the
        // fault plan, each charged a cycle penalty against the
        // blind-rotation window. A zero-rate plan samples nothing, so the
        // fault-free report is reproduced bit for bit.
        let fault_events: Vec<SimFaultEvent> = self
            .faults
            .sample(n)
            .into_iter()
            .map(|(iter, kind)| {
                let penalty_cycles = match kind {
                    // The pipeline drains for the outage, then pays a
                    // refill on top.
                    SimFaultKind::FftOutage => self.faults.fft_outage_cycles + PIPELINE_FILL_CYCLES,
                    SimFaultKind::DmaStall => self.faults.dma_stall_cycles,
                    // Re-fetch the iteration's BSK slice over the
                    // XPU-priority channels.
                    SimFaultKind::HbmBitFlip => bitflip_refetch_cycles(cfg, params),
                };
                SimFaultEvent {
                    iter,
                    kind,
                    penalty_cycles,
                }
            })
            .collect();
        let fault_cycles = fault_events.iter().map(|e| e.penalty_cycles).sum();

        SimReport {
            params_name: params.name,
            n_cts,
            cores: cores as usize,
            iter,
            iter_cycles,
            stream_batch,
            demand,
            stall,
            mem_stall,
            vpu_utilization,
            clock_hz: cfg.clock_hz(),
            br_cycles,
            fill_cycles: PIPELINE_FILL_CYCLES,
            ms_cycles,
            se_cycles,
            ks_cycles,
            fault_cycles,
            fault_events,
        }
    }

    /// Wall-clock seconds to run `count` bootstraps with at most
    /// `parallelism` of them independent at any time (dependencies cap the
    /// usable cores) — the application-mapping primitive of Table VI.
    pub fn batch_time_seconds(&self, params: &TfheParams, count: u64, parallelism: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let report = self.bootstrap_batch(params, count as usize);
        // Dependencies cap how many bootstraps can be in flight: each wave
        // of `min(cores, parallelism)` ciphertexts costs one latency window.
        let usable = (self.config.bootstrap_cores() as u64).min(parallelism.max(1));
        count.div_ceil(usable) as f64 * report.latency_seconds()
    }
}

/// The result of simulating one bootstrap batch: latency, throughput, and
/// every intermediate the evaluation figures need.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Parameter-set name.
    pub params_name: &'static str,
    /// Requested batch size.
    pub n_cts: usize,
    /// In-flight ciphertexts ("bootstrapping cores").
    pub cores: usize,
    /// Per-iteration XPU resource occupancy.
    pub iter: IterProfile,
    /// Steady-state iteration period (cycles, unstalled).
    pub iter_cycles: u64,
    /// Realized consecutive-stream batching depth `S`.
    pub stream_batch: usize,
    /// External-bandwidth demands.
    pub demand: BandwidthDemand,
    /// Pipeline stall factor (≥ 1): max of memory and VPU bounds.
    pub stall: f64,
    /// Memory-only stall factor (≥ 1) — the HBM contribution to `stall`,
    /// kept separate so traces can attribute stalls to a cause.
    pub mem_stall: f64,
    /// VPU utilization (fraction of one window).
    pub vpu_utilization: f64,
    /// Clock rate in Hz.
    pub clock_hz: f64,
    /// Blind-rotation cycles (n iterations, stalled).
    pub br_cycles: u64,
    /// One-time pipeline fill.
    pub fill_cycles: u64,
    /// Modulus-switch serial cycles.
    pub ms_cycles: u64,
    /// Sample-extraction serial cycles.
    pub se_cycles: u64,
    /// Key-switch serial cycles (one VPU lane group).
    pub ks_cycles: u64,
    /// Cycles lost to injected transient component outages (zero without
    /// a fault plan).
    pub fault_cycles: u64,
    /// The outages charged to this batch, in iteration order.
    pub fault_events: Vec<SimFaultEvent>,
}

/// What bounds a simulated bootstrap batch's steady-state throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bottleneck {
    /// The XPU pipeline runs unstalled — compute-bound (the intended
    /// operating point of the default configuration).
    Compute,
    /// HBM bandwidth (BSK/KSK/LWE traffic) stretches the iteration
    /// period.
    MemoryBandwidth,
    /// The VPU cannot key-switch the in-flight ciphertexts within one
    /// blind-rotation window.
    VpuThroughput,
}

impl Bottleneck {
    /// Short label for trace args and report tables.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::Compute => "compute",
            Bottleneck::MemoryBandwidth => "memory_bandwidth",
            Bottleneck::VpuThroughput => "vpu_throughput",
        }
    }
}

impl SimReport {
    /// Total latency of one bootstrap in cycles (including cycles lost to
    /// injected transient outages, which stretch the blind-rotation
    /// window).
    pub fn latency_cycles(&self) -> u64 {
        self.br_cycles
            + self.fill_cycles
            + self.ms_cycles
            + self.se_cycles
            + self.ks_cycles
            + self.fault_cycles
    }

    /// Which resource bounds this batch's throughput: the larger of the
    /// memory and VPU stall contributions, or compute if neither stalls
    /// the pipeline.
    pub fn bottleneck(&self) -> Bottleneck {
        if self.stall <= 1.0 {
            Bottleneck::Compute
        } else if self.mem_stall >= self.vpu_utilization {
            Bottleneck::MemoryBandwidth
        } else {
            Bottleneck::VpuThroughput
        }
    }

    /// Render the serial per-ciphertext latency chain (MS → BR → SE → KS)
    /// as an [`ExecutionTrace`], with stall and bottleneck attribution on
    /// the blind-rotation span. Merges cleanly with a scheduler trace
    /// (both use cycle ticks at the same clock).
    pub fn to_trace(&self) -> ExecutionTrace {
        let mut t = ExecutionTrace::new(self.clock_hz / 1e6);
        let vpu = t.track("Simulator", "VPU stages");
        let xpu = t.track("Simulator", "XPU blind rotation");
        let mut cursor = 0u64;
        t.span(vpu, "ModSwitch", "sim", cursor, self.ms_cycles);
        cursor += self.ms_cycles;
        t.span_with_args(
            xpu,
            "BlindRotate",
            "sim",
            cursor,
            self.br_cycles + self.fill_cycles + self.fault_cycles,
            vec![
                ("iter_cycles".into(), self.iter_cycles.to_string()),
                ("stream_batch".into(), self.stream_batch.to_string()),
                ("stall".into(), format!("{:.4}", self.stall)),
                ("mem_stall".into(), format!("{:.4}", self.mem_stall)),
                (
                    "vpu_utilization".into(),
                    format!("{:.4}", self.vpu_utilization),
                ),
                ("bottleneck".into(), self.bottleneck().label().into()),
            ],
        );
        cursor += self.br_cycles + self.fill_cycles + self.fault_cycles;
        if !self.fault_events.is_empty() {
            // One span per outage, placed at the iteration it hit within
            // the (stalled) blind-rotation window.
            let faults = t.track("Simulator", "Faults");
            let per_iter = self.iter_cycles as f64 * self.stall;
            for e in &self.fault_events {
                let offset = ((e.iter as f64 * per_iter).round() as u64).min(self.br_cycles);
                t.span_with_args(
                    faults,
                    e.kind.label(),
                    "fault",
                    self.ms_cycles + offset,
                    e.penalty_cycles.max(1),
                    vec![
                        ("iter".into(), e.iter.to_string()),
                        ("penalty_cycles".into(), e.penalty_cycles.to_string()),
                    ],
                );
            }
        }
        t.span(vpu, "SampleExtract", "sim", cursor, self.se_cycles);
        cursor += self.se_cycles;
        t.span(vpu, "KeySwitch", "sim", cursor, self.ks_cycles);
        t
    }

    /// Latency in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.latency_cycles() as f64 / self.clock_hz
    }

    /// Latency in milliseconds (the unit of Table V).
    pub fn latency_ms(&self) -> f64 {
        self.latency_seconds() * 1e3
    }

    /// Steady-state throughput in bootstrappings per second (Table V's
    /// BS/s): the in-flight ciphertexts complete every stalled
    /// blind-rotation window.
    pub fn throughput_bs_per_s(&self) -> f64 {
        self.cores as f64 / ((self.br_cycles + self.fault_cycles) as f64 / self.clock_hz)
    }

    /// Bridge into the serving autotuner: this simulated accelerator as a
    /// [`ServiceModel`](morphling_tfhe::ServiceModel). Each in-flight
    /// core slot is one "worker" whose per-bootstrap cost is the full
    /// (stalled) per-ciphertext latency; scaling across slots is linear
    /// by construction (the hardware completes `cores` bootstraps per
    /// window), so the parallel efficiency is 1 and there is no software
    /// batch overhead. Pair it with `workers = report.cores` when
    /// autotuning: `capacity_bs(cores)` then reproduces
    /// [`throughput_bs_per_s`](Self::throughput_bs_per_s) up to the
    /// one-time fill/serial stages.
    pub fn service_model(&self) -> morphling_tfhe::ServiceModel {
        morphling_tfhe::ServiceModel {
            bootstrap_ns: ((self.latency_cycles() as f64 / self.clock_hz) * 1e9).ceil() as u64,
            batch_overhead_ns: 0,
            parallel_efficiency: 1.0,
        }
    }

    /// Latency fractions per stage — Fig 7-a. Returns
    /// `(ms, xpu_blind_rotation, se, ks)` fractions summing to ≈ 1.
    pub fn latency_breakdown(&self) -> (f64, f64, f64, f64) {
        let total = self.latency_cycles() as f64;
        (
            self.ms_cycles as f64 / total,
            (self.br_cycles + self.fill_cycles) as f64 / total,
            self.se_cycles as f64 / total,
            self.ks_cycles as f64 / total,
        )
    }

    /// Energy per bootstrap in millijoules, given the chip power (e.g.
    /// from [`crate::hwmodel`]): `P / throughput`. The metric that makes
    /// Table V's area/power columns comparable across accelerators.
    pub fn energy_per_bootstrap_mj(&self, chip_power_w: f64) -> f64 {
        chip_power_w / self.throughput_bs_per_s() * 1e3
    }

    /// Busy fraction of each XPU resource within an iteration:
    /// `(rotator, decompose, fft, vpe, ifft)`.
    pub fn xpu_busy_fractions(&self) -> (f64, f64, f64, f64, f64) {
        let d = self.iter_cycles as f64 * self.stall;
        (
            self.iter.rotator as f64 / d,
            self.iter.decompose as f64 / d,
            self.iter.fft as f64 / d,
            self.iter.vpe as f64 / d,
            self.iter.ifft as f64 / d,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_tfhe::ParamSet;

    fn sim() -> Simulator {
        Simulator::new(ArchConfig::morphling_default())
    }

    #[test]
    fn table_v_set_i() {
        let r = sim().bootstrap_batch(&ParamSet::I.params(), 16);
        assert!(
            (r.latency_ms() - 0.11).abs() < 0.012,
            "latency {}",
            r.latency_ms()
        );
        let t = r.throughput_bs_per_s();
        assert!((140_000.0..160_000.0).contains(&t), "throughput {t}");
    }

    #[test]
    fn table_v_set_ii() {
        let r = sim().bootstrap_batch(&ParamSet::II.params(), 16);
        assert!(
            (r.latency_ms() - 0.20).abs() < 0.02,
            "latency {}",
            r.latency_ms()
        );
        let t = r.throughput_bs_per_s();
        assert!((72_000.0..86_000.0).contains(&t), "throughput {t}");
    }

    #[test]
    fn table_v_set_iii() {
        let r = sim().bootstrap_batch(&ParamSet::III.params(), 16);
        assert!(
            (r.latency_ms() - 0.38).abs() < 0.03,
            "latency {}",
            r.latency_ms()
        );
        let t = r.throughput_bs_per_s();
        assert!((39_000.0..46_000.0).contains(&t), "throughput {t}");
    }

    #[test]
    fn table_v_set_iv() {
        // Set IV's blind rotation alone is 0.158 ms (= the paper's 0.16);
        // our report also charges the serial KS tail (~0.03 ms), which the
        // paper's pipelined measurement hides — hence the wider tolerance.
        let r = sim().bootstrap_batch(&ParamSet::IV.params(), 16);
        assert!(
            (r.latency_ms() - 0.16).abs() < 0.04,
            "latency {}",
            r.latency_ms()
        );
        let t = r.throughput_bs_per_s();
        assert!((93_000.0..107_000.0).contains(&t), "throughput {t}");
    }

    #[test]
    fn no_stall_at_default_config() {
        for set in [ParamSet::I, ParamSet::II, ParamSet::III, ParamSet::IV] {
            let r = sim().bootstrap_batch(&set.params(), 16);
            assert!(r.stall <= 1.001, "set {:?} stalls by {}", set, r.stall);
            assert!(
                r.vpu_utilization <= 1.0,
                "set {:?} vpu {}",
                set,
                r.vpu_utilization
            );
        }
    }

    #[test]
    fn fig7a_xpu_dominates_latency() {
        for set in [ParamSet::I, ParamSet::II, ParamSet::III, ParamSet::IV] {
            let r = sim().bootstrap_batch(&set.params(), 16);
            let (_, br, _, _) = r.latency_breakdown();
            assert!(
                (0.80..=0.99).contains(&br),
                "set {:?}: br fraction {br}",
                set
            );
        }
    }

    #[test]
    fn xpu_scaling_saturates_beyond_the_multicast_width() {
        // Fig 8-b: linear up to 4 XPUs, then memory-bound.
        let params = ParamSet::A.params();
        let t4 = Simulator::new(ArchConfig::morphling_default())
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s();
        let t2 = Simulator::new(ArchConfig::morphling_default().with_xpus(2))
            .bootstrap_batch(&params, 8)
            .throughput_bs_per_s();
        let t8 = Simulator::new(ArchConfig::morphling_default().with_xpus(8))
            .bootstrap_batch(&params, 32)
            .throughput_bs_per_s();
        assert!((t4 / t2 - 2.0).abs() < 0.2, "t4/t2 = {}", t4 / t2);
        // Adding XPUs beyond the multicast width does not scale.
        assert!(t8 < 1.3 * t4, "t8 {} vs t4 {}", t8, t4);
    }

    #[test]
    fn small_private_a1_degrades_performance() {
        // Fig 8-a: below 4096 KiB (set A) the stream batch shrinks and the
        // BSK stream overloads the XPU channels.
        let params = ParamSet::A.params();
        let base = Simulator::new(ArchConfig::morphling_default())
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s();
        let small = Simulator::new(ArchConfig::morphling_default().with_private_a1_kb(1024))
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s();
        let large = Simulator::new(ArchConfig::morphling_default().with_private_a1_kb(16384))
            .bootstrap_batch(&params, 16)
            .throughput_bs_per_s();
        assert!(small < 0.7 * base, "small {} base {}", small, base);
        assert!(large <= base * 1.05, "large {} base {}", large, base);
    }

    #[test]
    fn bottleneck_attribution_follows_the_binding_bound() {
        // Default config at set I: unstalled → compute-bound.
        let r = sim().bootstrap_batch(&ParamSet::I.params(), 16);
        assert_eq!(r.bottleneck(), Bottleneck::Compute);
        // Starving Private-A1 kills stream batching → the BSK stream
        // overloads the XPU channels → memory-bound.
        let starved = Simulator::new(ArchConfig::morphling_default().with_private_a1_kb(256))
            .bootstrap_batch(&ParamSet::I.params(), 16);
        assert!(starved.stall > 1.0);
        assert_eq!(starved.bottleneck(), Bottleneck::MemoryBandwidth);
    }

    #[test]
    fn report_trace_covers_the_latency_chain() {
        let r = sim().bootstrap_batch(&ParamSet::I.params(), 16);
        let trace = r.to_trace();
        assert_eq!(trace.spans().len(), 4);
        assert_eq!(trace.makespan_ticks(), r.latency_cycles());
        let br = &trace.spans()[1];
        assert!(br.args.iter().any(|(k, _)| k == "bottleneck"));
        assert!(trace.to_chrome_json().contains("BlindRotate"));
    }

    #[test]
    fn batch_time_accounts_for_limited_parallelism() {
        let s = sim();
        let params = ParamSet::I.params();
        let serial = s.batch_time_seconds(&params, 16, 1);
        let parallel = s.batch_time_seconds(&params, 16, 16);
        assert!(
            serial > 10.0 * parallel,
            "serial {serial} parallel {parallel}"
        );
    }
}
