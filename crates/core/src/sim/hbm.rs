//! HBM bandwidth accounting (§IV-C, §VI-B).
//!
//! Three traffic classes share one HBM2e stack:
//!
//! - **BSK** (XPU): one `BSK_i` per iteration per multicast cluster,
//!   amortized over the `S` consecutive ACC streams batched in Private-A1
//!   (§IV-C's 64-ciphertext reuse = 4 rows × 4 XPUs × up to 4 streams).
//!   Served by the XPU-priority channels.
//! - **KSK** (VPU): the whole KSK once per 64-ciphertext group (KSK reuse,
//!   §IV-C). Served by the VPU-priority channels.
//! - **LWE I/O**: negligible but accounted.

use morphling_tfhe::TfheParams;

use crate::config::ArchConfig;

/// Bandwidth demands (GB/s) of one steady-state workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthDemand {
    /// BSK stream demand across all clusters.
    pub bsk_gb_s: f64,
    /// KSK stream demand.
    pub ksk_gb_s: f64,
    /// LWE input/output demand.
    pub lwe_gb_s: f64,
    /// ACC spill traffic (zero unless the BSK-stationary dataflow streams
    /// accumulator ciphertexts through external memory, §IV-B).
    pub acc_spill_gb_s: f64,
}

impl BandwidthDemand {
    /// Compute demand given the iteration period (in cycles), the stream
    /// batching depth `S`, and the achieved bootstrap throughput (BS/s)
    /// *before* memory stalls.
    pub fn compute(
        config: &ArchConfig,
        params: &TfheParams,
        iter_cycles: u64,
        stream_batch: usize,
        raw_throughput: f64,
    ) -> Self {
        let iter_seconds = iter_cycles as f64 / config.clock_hz();
        let bsk_gb_s = config.bsk_clusters() as f64 * params.bsk_iter_bytes_fourier() as f64
            / (stream_batch as f64 * iter_seconds)
            / 1e9;
        // KSK is fetched once per ciphertext group (64 by default — the
        // reuse factor of §IV-C) and streamed while that group key-switches.
        let group = (config.bootstrap_cores() * config.max_stream_batch).max(1) as f64;
        let ksk_gb_s = params.ksk_total_bytes() as f64 * raw_throughput / group / 1e9;
        let lwe_bytes = 2.0 * (params.lwe_dim as f64 + 1.0) * 4.0;
        let lwe_gb_s = lwe_bytes * raw_throughput / 1e9;
        // BSK-stationary keeps BSK resident but must stream the per-
        // iteration accumulator state (transform domain, in + out) of every
        // in-flight ciphertext through HBM — "more ciphertext … additional
        // pressure on the external memory bandwidth" (§IV-B).
        let acc_spill_gb_s = if config.dataflow == crate::config::Dataflow::BskStationary {
            let bytes_per_iter =
                config.bootstrap_cores() as f64 * 2.0 * 2.0 * params.acc_bytes() as f64;
            bytes_per_iter / iter_seconds / 1e9
        } else {
            0.0
        };
        Self {
            bsk_gb_s,
            ksk_gb_s,
            lwe_gb_s,
            acc_spill_gb_s,
        }
    }

    /// Hard ceiling on the stall factor. A channel split that leaves a
    /// traffic class with no bandwidth at all (e.g. every channel
    /// prioritized for the XPU while KSK traffic still flows) would
    /// otherwise divide by zero — or, with float rounding, go negative —
    /// and silently poison every downstream latency. A saturated stall
    /// keeps the report finite and unmistakably pathological.
    pub const MAX_STALL: f64 = 1e6;

    /// The pipeline stall factor: ≥ 1, ≤ [`Self::MAX_STALL`]. BSK
    /// competes for the XPU-priority channels; KSK + LWE compete for the
    /// VPU-priority channels; the whole stack is the final backstop.
    pub fn stall_factor(&self, config: &ArchConfig) -> f64 {
        let xpu_cap = config.hbm.xpu_priority_gb_s().max(0.0);
        let vpu_cap = (config.hbm.total_gb_s - xpu_cap).max(0.0);
        // A class with demand but zero capacity saturates outright.
        let class_stall = |demand: f64, cap: f64| {
            if demand <= 0.0 {
                1.0
            } else if cap <= 0.0 {
                Self::MAX_STALL
            } else {
                demand / cap
            }
        };
        let xpu_stall = class_stall(self.bsk_gb_s + self.acc_spill_gb_s, xpu_cap);
        let vpu_stall = class_stall(self.ksk_gb_s + self.lwe_gb_s, vpu_cap);
        let total_stall = class_stall(
            self.bsk_gb_s + self.ksk_gb_s + self.lwe_gb_s + self.acc_spill_gb_s,
            config.hbm.total_gb_s,
        );
        xpu_stall
            .max(vpu_stall)
            .max(total_stall)
            .clamp(1.0, Self::MAX_STALL)
    }
}

/// Cycles to re-fetch one iteration's BSK slice after a corrupted HBM
/// burst (ECC/CRC-detected bit flip): the slice streams again over the
/// XPU-priority channels at their full rate. The penalty the simulator
/// charges per [`HbmBitFlip`](crate::faults::SimFaultKind::HbmBitFlip)
/// fault.
pub fn bitflip_refetch_cycles(config: &ArchConfig, params: &TfheParams) -> u64 {
    let cap_gb_s = config.hbm.xpu_priority_gb_s().max(f64::MIN_POSITIVE);
    let seconds = params.bsk_iter_bytes_fourier() as f64 / (cap_gb_s * 1e9);
    ((seconds * config.clock_hz()).ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphling_tfhe::ParamSet;

    #[test]
    fn bitflip_refetch_matches_the_channel_rate() {
        let cfg = ArchConfig::morphling_default();
        let params = ParamSet::I.params();
        let cycles = bitflip_refetch_cycles(&cfg, &params);
        // 32 KiB over 77.5 GB/s at 1.2 GHz ≈ 500 cycles: nonzero, and
        // small against a full blind rotation.
        assert!(cycles >= 1);
        let expect = params.bsk_iter_bytes_fourier() as f64 / (cfg.hbm.xpu_priority_gb_s() * 1e9)
            * cfg.clock_hz();
        assert!((cycles as f64 - expect).abs() <= 1.0, "cycles {cycles}");
    }

    #[test]
    fn default_set_i_fits_in_the_priority_channels() {
        let cfg = ArchConfig::morphling_default();
        let d = BandwidthDemand::compute(&cfg, &ParamSet::I.params(), 256, 4, 150_000.0);
        // 32 KiB per iteration over 4 streams × 213 ns ≈ 38 GB/s < 77.5.
        assert!((35.0..42.0).contains(&d.bsk_gb_s), "bsk {}", d.bsk_gb_s);
        assert_eq!(d.stall_factor(&cfg), 1.0);
    }

    #[test]
    fn no_stream_batching_overloads_the_xpu_channels() {
        let cfg = ArchConfig::morphling_default();
        let d = BandwidthDemand::compute(&cfg, &ParamSet::I.params(), 256, 1, 150_000.0);
        assert!(d.bsk_gb_s > 140.0, "bsk {}", d.bsk_gb_s);
        assert!(d.stall_factor(&cfg) > 1.5);
    }

    #[test]
    fn zero_vpu_capacity_saturates_instead_of_diverging() {
        // All eight channels prioritized for the XPU: the VPU classes
        // have zero capacity, so their nonzero KSK/LWE demand must yield
        // the saturated stall — finite, positive, and clamped — rather
        // than an infinity (or, with rounding, a negative value).
        let mut cfg = ArchConfig::morphling_default();
        cfg.hbm.vpu_priority_channels = 0;
        assert!(cfg.hbm.xpu_priority_gb_s() >= cfg.hbm.total_gb_s);
        let d = BandwidthDemand::compute(&cfg, &ParamSet::I.params(), 256, 4, 150_000.0);
        assert!(d.ksk_gb_s > 0.0);
        let stall = d.stall_factor(&cfg);
        assert!(stall.is_finite(), "stall {stall} not finite");
        assert_eq!(stall, BandwidthDemand::MAX_STALL);
        // Zero demand against zero capacity is not a stall at all.
        let idle = BandwidthDemand {
            bsk_gb_s: 0.0,
            ksk_gb_s: 0.0,
            lwe_gb_s: 0.0,
            acc_spill_gb_s: 0.0,
        };
        assert_eq!(idle.stall_factor(&cfg), 1.0);
    }

    #[test]
    fn ksk_demand_reflects_group_reuse() {
        let cfg = ArchConfig::morphling_default();
        let params = ParamSet::I.params();
        let d = BandwidthDemand::compute(&cfg, &params, 256, 4, 150_000.0);
        // 6.3 MB KSK per 64 ciphertexts at 150 kBS/s ≈ 15 GB/s.
        let expect = params.ksk_total_bytes() as f64 * 150_000.0 / 64.0 / 1e9;
        assert!((d.ksk_gb_s - expect).abs() < 1e-6);
        assert!(d.ksk_gb_s < 40.0);
    }
}
