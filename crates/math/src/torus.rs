//! Discretized-torus scalar types.
//!
//! TFHE works over the real torus `T = R/Z`. Implementations discretize it to
//! `T_q = {0, 1/q, ..., (q-1)/q}` with `q = 2^32` (the paper's datapath) or
//! `q = 2^64`. A torus element is then just a machine word with *wrapping*
//! arithmetic: addition on the torus is addition mod 1, i.e. wrapping integer
//! addition; multiplication between two torus elements is undefined, but a
//! torus element can be scaled by a (signed) integer.

use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// Abstraction over the machine word backing a discretized torus element.
///
/// Implemented for [`Torus32`] (the paper's 32-bit coefficients) and
/// [`Torus64`]. This trait is sealed: it exists so that polynomial and
/// ciphertext code in higher crates can be written once for both widths.
pub trait TorusScalar:
    Copy
    + Clone
    + fmt::Debug
    + Default
    + PartialEq
    + Eq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Send
    + Sync
    + 'static
    + private::Sealed
{
    /// Number of bits in the backing word (i.e. `log2 q`).
    const BITS: u32;

    /// The additive identity `0`.
    const ZERO: Self;

    /// Construct from a real torus value in `[0, 1)` (wrapping outside).
    fn from_f64(x: f64) -> Self;

    /// Convert to the representative real value in `[0, 1)`.
    fn to_f64(self) -> f64;

    /// Convert to the *centered* representative in `[-0.5, 0.5)`.
    fn to_f64_signed(self) -> f64;

    /// Raw value as `u64` (zero-extended for 32-bit).
    fn to_u64(self) -> u64;

    /// Construct from the low bits of a `u64`.
    fn from_u64(raw: u64) -> Self;

    /// Multiply by a signed integer (external Z-module action).
    fn scalar_mul(self, k: i64) -> Self;

    /// Encode a message `m ∈ Z_p` into the torus as `m / p` (p need not
    /// divide q; rounding to the nearest representable value).
    fn encode(message: u64, p: u64) -> Self;

    /// Decode a torus value back to `Z_p` by rounding to the nearest
    /// multiple of `1/p`.
    fn decode(self, p: u64) -> u64;

    /// Modulus-switch to modulus `2N`: returns `round(self * 2N / q)`
    /// reduced mod `2N`. This is the paper's MS step (§II-B).
    fn mod_switch(self, two_n: u64) -> u64;
}

mod private {
    pub trait Sealed {}
    impl Sealed for super::Torus32 {}
    impl Sealed for super::Torus64 {}
}

macro_rules! torus_impl {
    ($name:ident, $raw:ty, $wide:ty, $iwide:ty, $bits:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
        pub struct $name($raw);

        impl $name {
            /// The additive identity.
            pub const ZERO: Self = Self(0);

            /// `1/2` on the torus (the most-significant bit set).
            pub const HALF: Self = Self(1 << ($bits - 1));

            /// Construct from the raw fixed-point representation.
            #[inline]
            pub const fn from_raw(raw: $raw) -> Self {
                Self(raw)
            }

            /// The raw fixed-point representation (numerator of `x/q`).
            #[inline]
            pub const fn into_raw(self) -> $raw {
                self.0
            }

            /// Wrapping addition (torus addition is addition mod 1).
            #[inline]
            pub fn wrapping_add(self, rhs: Self) -> Self {
                Self(self.0.wrapping_add(rhs.0))
            }

            /// Wrapping subtraction.
            #[inline]
            pub fn wrapping_sub(self, rhs: Self) -> Self {
                Self(self.0.wrapping_sub(rhs.0))
            }

            /// Centered signed representative as the signed integer of the
            /// same width: values ≥ q/2 map to negatives.
            #[inline]
            pub fn to_signed(self) -> $iwide {
                self.0 as $iwide
            }

            /// Round to the closest multiple of `q / 2^keep_bits`, i.e. keep
            /// the top `keep_bits` bits with round-to-nearest. Used by the
            /// gadget decomposition (§II-B) and by approximate rounding in
            /// the key switch.
            #[inline]
            pub fn round_to_bits(self, keep_bits: u32) -> Self {
                debug_assert!(keep_bits <= $bits);
                if keep_bits == $bits {
                    return self;
                }
                if keep_bits == 0 {
                    return Self(0);
                }
                let drop = $bits - keep_bits;
                let half = (1 as $raw) << (drop - 1);
                Self(self.0.wrapping_add(half) & (<$raw>::MAX << drop))
            }
        }

        impl TorusScalar for $name {
            const BITS: u32 = $bits;
            const ZERO: Self = Self(0);

            #[inline]
            fn from_f64(x: f64) -> Self {
                // Reduce to [0,1), then scale. `rem_euclid` keeps the result
                // non-negative even for negative inputs.
                let frac = x.rem_euclid(1.0);
                // The scale can round up to exactly 2^BITS; wrap that to 0.
                let scaled = (frac * (2.0f64).powi($bits as i32)).round();
                Self(scaled as $wide as $raw)
            }

            #[inline]
            fn to_f64(self) -> f64 {
                self.0 as f64 / (2.0f64).powi($bits as i32)
            }

            #[inline]
            fn to_f64_signed(self) -> f64 {
                (self.0 as $iwide) as f64 / (2.0f64).powi($bits as i32)
            }

            #[inline]
            fn to_u64(self) -> u64 {
                self.0 as u64
            }

            #[inline]
            fn from_u64(raw: u64) -> Self {
                Self(raw as $raw)
            }

            #[inline]
            fn scalar_mul(self, k: i64) -> Self {
                Self((self.0 as $wide).wrapping_mul(k as $wide) as $raw)
            }

            #[inline]
            fn encode(message: u64, p: u64) -> Self {
                assert!(p > 0, "plaintext modulus must be positive");
                let m = message % p;
                if p.is_power_of_two() && p as u128 <= (1u128 << $bits) {
                    // Exact encoding: m * q / p.
                    let shift = $bits - p.trailing_zeros();
                    Self(((m as $wide) << shift) as $raw)
                } else {
                    Self::from_f64(m as f64 / p as f64)
                }
            }

            #[inline]
            fn decode(self, p: u64) -> u64 {
                assert!(p > 0, "plaintext modulus must be positive");
                // round(self * p / q) mod p, computed in 128-bit to stay exact.
                let prod = (self.0 as u128) * (p as u128);
                let half = 1u128 << ($bits - 1);
                (((prod + half) >> $bits) as u64) % p
            }

            #[inline]
            fn mod_switch(self, two_n: u64) -> u64 {
                debug_assert!(two_n.is_power_of_two());
                let prod = (self.0 as u128) * (two_n as u128);
                let half = 1u128 << ($bits - 1);
                (((prod + half) >> $bits) as u64) % two_n
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = self.wrapping_add(rhs);
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.wrapping_sub(rhs)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = self.wrapping_sub(rhs);
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(self.0.wrapping_neg())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    concat!(stringify!($name), "({:#x} ~ {:.6})"),
                    self.0,
                    self.to_f64()
                )
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6}", self.to_f64())
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl From<$raw> for $name {
            #[inline]
            fn from(raw: $raw) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $raw {
            #[inline]
            fn from(t: $name) -> $raw {
                t.0
            }
        }
    };
}

torus_impl!(
    Torus32,
    u32,
    u64,
    i32,
    32,
    "An element of the discretized torus `T_q` with `q = 2^32`, stored as the\n\
     fixed-point numerator. This is the coefficient type of the paper's\n\
     256-bit (eight-element) polynomial datapath."
);

torus_impl!(
    Torus64,
    u64,
    u128,
    i64,
    64,
    "An element of the discretized torus `T_q` with `q = 2^64`. Used for\n\
     headroom experiments; the primary datapath type is [`Torus32`]."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_wraps_like_the_torus() {
        let a = Torus32::from_f64(0.75);
        let b = Torus32::from_f64(0.5);
        let c = a + b;
        assert!((c.to_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn negation_is_one_minus_x() {
        let a = Torus32::from_f64(0.25);
        assert!(((-a).to_f64() - 0.75).abs() < 1e-9);
        assert_eq!(-Torus32::ZERO, Torus32::ZERO);
    }

    #[test]
    fn encode_decode_roundtrip_all_messages() {
        for p in [2u64, 4, 8, 16, 256] {
            for m in 0..p {
                let t = Torus32::encode(m, p);
                assert_eq!(t.decode(p), m, "p={p} m={m}");
            }
        }
    }

    #[test]
    fn encode_decode_non_power_of_two() {
        for p in [3u64, 5, 10, 100] {
            for m in 0..p {
                let t = Torus64::encode(m, p);
                assert_eq!(t.decode(p), m, "p={p} m={m}");
            }
        }
    }

    #[test]
    fn decode_tolerates_noise_below_half_step() {
        let p = 8u64;
        let m = 5u64;
        let step = 1u32 << (32 - 3); // q/p
        let noise = (step / 2) - 1;
        let noisy = Torus32::encode(m, p) + Torus32::from_raw(noise);
        assert_eq!(noisy.decode(p), m);
        let noisy = Torus32::encode(m, p) - Torus32::from_raw(noise);
        assert_eq!(noisy.decode(p), m);
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let a = Torus32::from_raw(0x1234_5678);
        let mut sum = Torus32::ZERO;
        for _ in 0..17 {
            sum += a;
        }
        assert_eq!(a.scalar_mul(17), sum);
        assert_eq!(a.scalar_mul(-1), -a);
        assert_eq!(a.scalar_mul(0), Torus32::ZERO);
    }

    #[test]
    fn mod_switch_rounds_to_nearest() {
        let two_n = 2048u64;
        // 0.5 on the torus → N.
        assert_eq!(Torus32::HALF.mod_switch(two_n), 1024);
        // A value just below wrapping rounds to 0 (mod 2N).
        let eps = Torus32::from_raw(u32::MAX);
        assert_eq!(eps.mod_switch(two_n), 0);
    }

    #[test]
    fn round_to_bits_keeps_top_bits() {
        let x = Torus32::from_raw(0b1010_1101 << 24);
        assert_eq!(x.round_to_bits(4).into_raw() >> 28, 0b1011);
        assert_eq!(x.round_to_bits(32), x);
        assert_eq!(x.round_to_bits(0), Torus32::ZERO);
    }

    #[test]
    fn from_f64_wraps_negative_values() {
        let a = Torus32::from_f64(-0.25);
        assert!((a.to_f64() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn signed_representative_is_centered() {
        assert!(Torus32::from_f64(0.75).to_f64_signed() < 0.0);
        assert!((Torus32::from_f64(0.75).to_f64_signed() + 0.25).abs() < 1e-9);
    }

    #[test]
    fn torus64_basics() {
        let a = Torus64::from_f64(0.5);
        assert_eq!(a, Torus64::HALF);
        assert_eq!((a + a), Torus64::ZERO);
    }
}
