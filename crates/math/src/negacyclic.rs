//! Exact negacyclic polynomial multiplication.
//!
//! These routines are the *correctness oracle* of the repository: they
//! compute products in `Z_q[X]/(X^N + 1)` exactly (O(N²) schoolbook with
//! wide accumulators), with no floating-point involved. The FFT-based path
//! in `morphling-transform` — the one the hardware accelerates — is tested
//! against them bit-for-bit.

use crate::poly::Polynomial;
use crate::torus::{Torus32, Torus64, TorusScalar};

/// Exact negacyclic product of an integer polynomial (e.g. decomposition
/// digits) with a torus polynomial: `digits(X) · t(X) mod (X^N + 1)`.
///
/// This is the external-product building block: in TFHE the left operand is
/// always a small-digit polynomial from the gadget decomposition and the
/// right operand a ciphertext (torus) polynomial.
///
/// # Panics
///
/// Panics if the operand lengths differ.
pub fn mul_int_torus32(digits: &Polynomial<i64>, t: &Polynomial<Torus32>) -> Polynomial<Torus32> {
    let n = digits.len();
    assert_eq!(n, t.len(), "negacyclic product size mismatch");
    let mut acc = vec![0i64; n];
    for (j, &d) in digits.iter().enumerate() {
        if d == 0 {
            continue;
        }
        for (m, &c) in t.iter().enumerate() {
            let k = j + m;
            // Signed representative of the torus coefficient keeps products
            // small; wrapping at the end reduces mod q.
            let prod = d.wrapping_mul(c.to_signed() as i64);
            if k < n {
                acc[k] = acc[k].wrapping_add(prod);
            } else {
                acc[k - n] = acc[k - n].wrapping_sub(prod);
            }
        }
    }
    Polynomial::from_coeffs(
        acc.into_iter()
            .map(|v| Torus32::from_raw(v as u32))
            .collect(),
    )
}

/// Lane-wise exact negacyclic products `digits[l](X) · ts[l](X)` — the
/// correctness oracle for the batched (SoA) transform path, which computes
/// all lanes in lockstep.
///
/// # Panics
///
/// Panics if the slices have different lengths or any lane's operand
/// sizes disagree.
pub fn mul_int_torus32_batch(
    digits: &[Polynomial<i64>],
    ts: &[Polynomial<Torus32>],
) -> Vec<Polynomial<Torus32>> {
    assert_eq!(digits.len(), ts.len(), "batch lane count mismatch");
    digits
        .iter()
        .zip(ts)
        .map(|(d, t)| mul_int_torus32(d, t))
        .collect()
}

/// Exact negacyclic product for the 64-bit torus. Accumulates in `i128`.
///
/// # Panics
///
/// Panics if the operand lengths differ.
pub fn mul_int_torus64(digits: &Polynomial<i64>, t: &Polynomial<Torus64>) -> Polynomial<Torus64> {
    let n = digits.len();
    assert_eq!(n, t.len(), "negacyclic product size mismatch");
    let mut acc = vec![0i128; n];
    for (j, &d) in digits.iter().enumerate() {
        if d == 0 {
            continue;
        }
        for (m, &c) in t.iter().enumerate() {
            let k = j + m;
            let prod = (d as i128).wrapping_mul(c.to_signed() as i128);
            if k < n {
                acc[k] = acc[k].wrapping_add(prod);
            } else {
                acc[k - n] = acc[k - n].wrapping_sub(prod);
            }
        }
    }
    Polynomial::from_coeffs(
        acc.into_iter()
            .map(|v| Torus64::from_u64(v as u64))
            .collect(),
    )
}

/// Exact negacyclic product of two integer polynomials, with `i128`
/// accumulation. Useful in tests and in the plaintext reference paths of the
/// application models.
///
/// # Panics
///
/// Panics if the operand lengths differ.
pub fn mul_int_int(a: &Polynomial<i64>, b: &Polynomial<i64>) -> Polynomial<i64> {
    let n = a.len();
    assert_eq!(n, b.len(), "negacyclic product size mismatch");
    let mut acc = vec![0i128; n];
    for (j, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        for (m, &y) in b.iter().enumerate() {
            let k = j + m;
            let prod = (x as i128) * (y as i128);
            if k < n {
                acc[k] += prod;
            } else {
                acc[k - n] -= prod;
            }
        }
    }
    Polynomial::from_coeffs(acc.into_iter().map(|v| v as i64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(v: &[i64]) -> Polynomial<i64> {
        Polynomial::from_coeffs(v.to_vec())
    }

    #[test]
    fn x_times_x_cubed_is_minus_one() {
        // In Z[X]/(X^4+1): X * X^3 = X^4 = -1.
        let a = poly(&[0, 1, 0, 0]);
        let b = poly(&[0, 0, 0, 1]);
        assert_eq!(mul_int_int(&a, &b).coeffs(), &[-1, 0, 0, 0]);
    }

    #[test]
    fn multiplication_by_one_is_identity() {
        let one = poly(&[1, 0, 0, 0]);
        let b = poly(&[5, -3, 7, 11]);
        assert_eq!(mul_int_int(&one, &b), b);
    }

    #[test]
    fn commutative_for_int_polys() {
        let a = poly(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let b = poly(&[-2, 7, 1, -8, 2, 8, -1, 8]);
        assert_eq!(mul_int_int(&a, &b), mul_int_int(&b, &a));
    }

    #[test]
    fn monomial_product_matches_rotation() {
        let t = Polynomial::from_fn(8, |j| Torus32::from_raw((j as u32 + 1) * 1000));
        for a in 0..8i64 {
            let mut mono = Polynomial::<i64>::zero(8);
            mono[a as usize] = 1;
            assert_eq!(mul_int_torus32(&mono, &t), t.monomial_mul(a), "a={a}");
        }
    }

    #[test]
    fn distributes_over_addition() {
        let d = poly(&[2, -1, 0, 3]);
        let t1 = Polynomial::from_fn(4, |j| {
            Torus32::from_raw(0x1111_1111u32.wrapping_mul(j as u32))
        });
        let t2 = Polynomial::from_fn(4, |j| {
            Torus32::from_raw(0x0F0F_0F0Fu32.wrapping_add(j as u32))
        });
        let lhs = mul_int_torus32(&d, &(&t1 + &t2));
        let rhs = &mul_int_torus32(&d, &t1) + &mul_int_torus32(&d, &t2);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn torus64_matches_torus32_on_small_values() {
        let d = poly(&[1, -2, 3, -4]);
        let t32 = Polynomial::from_fn(4, |j| Torus32::from_raw((j as u32 + 1) << 8));
        let t64 = t32.map(|c| Torus64::from_u64((c.into_raw() as u64) << 32));
        let p32 = mul_int_torus32(&d, &t32);
        let p64 = mul_int_torus64(&d, &t64);
        for j in 0..4 {
            assert_eq!(p64[j].to_u64() >> 32, p32[j].into_raw() as u64, "j={j}");
        }
    }
}
