//! Dense polynomials interpreted in the negacyclic ring `R[X]/(X^N + 1)`.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Neg, Sub, SubAssign};

use crate::torus::TorusScalar;

/// A dense polynomial of degree `< N` with coefficients of type `T`,
/// interpreted in the quotient ring `R[X]/(X^N + 1)` (negacyclic ring).
///
/// `N` must be a power of two; this is validated by every constructor.
/// Morphling packs these coefficients eight at a time into its 256-bit
/// datapath — the simulator models that, while this type is the functional
/// representation.
///
/// # Example
///
/// ```
/// use morphling_math::Polynomial;
///
/// let p = Polynomial::from_coeffs(vec![1i64, 2, 3, 4]);
/// let q = &p + &p;
/// assert_eq!(q.coeffs(), &[2, 4, 6, 8]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Polynomial<T> {
    coeffs: Vec<T>,
}

impl<T: Copy + Default> Polynomial<T> {
    /// The zero polynomial with `n` coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn zero(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "polynomial size must be a power of two, got {n}"
        );
        Self {
            coeffs: vec![T::default(); n],
        }
    }

    /// Build from an explicit coefficient vector (constant term first).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_coeffs(coeffs: Vec<T>) -> Self {
        assert!(
            coeffs.len().is_power_of_two(),
            "polynomial size must be a power of two, got {}",
            coeffs.len()
        );
        Self { coeffs }
    }

    /// Build by evaluating `f(j)` for each coefficient index `j`.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> T) -> Self {
        assert!(
            n.is_power_of_two(),
            "polynomial size must be a power of two, got {n}"
        );
        Self {
            coeffs: (0..n).map(f).collect(),
        }
    }

    /// Number of coefficients `N` (the ring degree).
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the polynomial has zero length. Always false for a valid
    /// polynomial (N ≥ 1), provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Borrow the coefficient slice (constant term first).
    #[inline]
    pub fn coeffs(&self) -> &[T] {
        &self.coeffs
    }

    /// Mutably borrow the coefficient slice.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [T] {
        &mut self.coeffs
    }

    /// Consume and return the coefficient vector.
    #[inline]
    pub fn into_coeffs(self) -> Vec<T> {
        self.coeffs
    }

    /// Iterate over coefficients.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.coeffs.iter()
    }

    /// Map every coefficient through `f`, producing a polynomial of a
    /// possibly different coefficient type.
    pub fn map<U: Copy + Default>(&self, f: impl FnMut(&T) -> U) -> Polynomial<U> {
        Polynomial {
            coeffs: self.coeffs.iter().map(f).collect(),
        }
    }
}

impl<T> Polynomial<T>
where
    T: Copy + Default + Neg<Output = T>,
{
    /// Multiply by the monomial `X^power` in the negacyclic ring.
    ///
    /// `power` is taken modulo `2N`; exponents in `[N, 2N)` flip the sign of
    /// the wrapped coefficients because `X^N = -1`. This is the *rotation*
    /// the paper performs with the double-pointer method inside the
    /// Private-A1 buffer (§V-C): a shifted read plus conditional negation.
    #[must_use]
    pub fn monomial_mul(&self, power: i64) -> Self {
        let mut out = Self::zero(self.len());
        self.monomial_mul_into(power, &mut out);
        out
    }

    /// [`monomial_mul`](Self::monomial_mul) into a caller-owned
    /// polynomial — every output coefficient is overwritten, so `out`
    /// needs no prior clearing. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn monomial_mul_into(&self, power: i64, out: &mut Self) {
        assert_eq!(out.len(), self.len(), "output polynomial size mismatch");
        let n = self.len() as i64;
        let two_n = 2 * n;
        let a = power.rem_euclid(two_n);
        let (shift, negate_all) = if a < n { (a, false) } else { (a - n, true) };
        let shift = shift as usize;
        let n = n as usize;
        for j in 0..n {
            // out[j + shift] = coeffs[j], wrapping with sign flip.
            let (dst, wrapped) = if j + shift < n {
                (j + shift, false)
            } else {
                (j + shift - n, true)
            };
            let v = self.coeffs[j];
            let v = if wrapped ^ negate_all { -v } else { v };
            out.coeffs[dst] = v;
        }
    }

    /// `X^power * self - self`: the rotate-and-subtract producing the
    /// `Λ_{i-1}` term of the external product (Algorithm 1, line 4).
    #[must_use]
    pub fn monomial_mul_minus_one(&self, power: i64) -> Self
    where
        T: Sub<Output = T>,
    {
        let mut out = Self::zero(self.len());
        self.monomial_mul_minus_one_into(power, &mut out);
        out
    }

    /// [`monomial_mul_minus_one`](Self::monomial_mul_minus_one) into a
    /// caller-owned polynomial — the fused rotate-subtract the hardware's
    /// double-pointer read performs, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn monomial_mul_minus_one_into(&self, power: i64, out: &mut Self)
    where
        T: Sub<Output = T>,
    {
        self.monomial_mul_into(power, out);
        for (o, &s) in out.coeffs.iter_mut().zip(&self.coeffs) {
            *o = *o - s;
        }
    }
}

impl<T: TorusScalar> Polynomial<T> {
    /// Sum of `scalar_mul` of each coefficient: `Σ k_j * c_j` — used by
    /// exact LWE-phase computations.
    pub fn dot_scalars(&self, scalars: &[i64]) -> T {
        assert_eq!(self.len(), scalars.len(), "length mismatch in dot product");
        let mut acc = T::ZERO;
        for (&c, &k) in self.coeffs.iter().zip(scalars) {
            acc += c.scalar_mul(k);
        }
        acc
    }
}

impl<T: Copy + Default> Index<usize> for Polynomial<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.coeffs[i]
    }
}

impl<T: Copy + Default> IndexMut<usize> for Polynomial<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.coeffs[i]
    }
}

macro_rules! binop_impl {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<'a, T> $trait<&'a Polynomial<T>> for &'a Polynomial<T>
        where
            T: Copy + Default + $trait<Output = T>,
        {
            type Output = Polynomial<T>;
            fn $method(self, rhs: &'a Polynomial<T>) -> Polynomial<T> {
                assert_eq!(self.len(), rhs.len(), "polynomial size mismatch");
                Polynomial {
                    coeffs: self
                        .coeffs
                        .iter()
                        .zip(&rhs.coeffs)
                        .map(|(&a, &b)| a $op b)
                        .collect(),
                }
            }
        }

        impl<T> $trait for Polynomial<T>
        where
            T: Copy + Default + $trait<Output = T>,
        {
            type Output = Polynomial<T>;
            fn $method(self, rhs: Polynomial<T>) -> Polynomial<T> {
                (&self).$method(&rhs)
            }
        }
    };
}

binop_impl!(Add, add, +);
binop_impl!(Sub, sub, -);

impl<T> AddAssign<&Polynomial<T>> for Polynomial<T>
where
    T: Copy + Default + AddAssign,
{
    fn add_assign(&mut self, rhs: &Polynomial<T>) {
        assert_eq!(self.len(), rhs.len(), "polynomial size mismatch");
        for (a, &b) in self.coeffs.iter_mut().zip(&rhs.coeffs) {
            *a += b;
        }
    }
}

impl<T> SubAssign<&Polynomial<T>> for Polynomial<T>
where
    T: Copy + Default + SubAssign,
{
    fn sub_assign(&mut self, rhs: &Polynomial<T>) {
        assert_eq!(self.len(), rhs.len(), "polynomial size mismatch");
        for (a, &b) in self.coeffs.iter_mut().zip(&rhs.coeffs) {
            *a -= b;
        }
    }
}

impl<T> Neg for &Polynomial<T>
where
    T: Copy + Default + Neg<Output = T>,
{
    type Output = Polynomial<T>;
    fn neg(self) -> Polynomial<T> {
        Polynomial {
            coeffs: self.coeffs.iter().map(|&a| -a).collect(),
        }
    }
}

impl<T> Neg for Polynomial<T>
where
    T: Copy + Default + Neg<Output = T>,
{
    type Output = Polynomial<T>;
    fn neg(self) -> Polynomial<T> {
        -&self
    }
}

impl<T: fmt::Debug> fmt::Debug for Polynomial<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Elide the middle of large polynomials to keep Debug usable.
        if self.coeffs.len() <= 8 {
            f.debug_struct("Polynomial")
                .field("coeffs", &self.coeffs)
                .finish()
        } else {
            write!(
                f,
                "Polynomial {{ n: {}, head: {:?}, .. }}",
                self.coeffs.len(),
                &self.coeffs[..4]
            )
        }
    }
}

impl<T: Copy + Default> FromIterator<T> for Polynomial<T> {
    /// Collect coefficients into a polynomial.
    ///
    /// # Panics
    ///
    /// Panics if the number of items is not a power of two.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::from_coeffs(iter.into_iter().collect())
    }
}

impl<'a, T> IntoIterator for &'a Polynomial<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.coeffs.iter()
    }
}

impl<T> IntoIterator for Polynomial<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.coeffs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::Torus32;

    fn poly_i64(v: &[i64]) -> Polynomial<i64> {
        Polynomial::from_coeffs(v.to_vec())
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Polynomial::<i64>::zero(3);
    }

    #[test]
    fn monomial_mul_shifts_and_flips() {
        let p = poly_i64(&[1, 2, 3, 4]);
        // X^1 * p = -4 + x + 2x^2 + 3x^3 (x^4 = -1 wraps the top coeff).
        assert_eq!(p.monomial_mul(1).coeffs(), &[-4, 1, 2, 3]);
        // X^4 = -1 negates everything.
        assert_eq!(p.monomial_mul(4).coeffs(), &[-1, -2, -3, -4]);
        // X^8 = identity.
        assert_eq!(p.monomial_mul(8), p);
        // Negative exponents rotate the other way.
        assert_eq!(p.monomial_mul(-1).coeffs(), &[2, 3, 4, -1]);
    }

    #[test]
    fn monomial_mul_composes() {
        let p = poly_i64(&[5, -7, 11, 13, 0, 2, -3, 1]);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(
                    p.monomial_mul(a).monomial_mul(b),
                    p.monomial_mul(a + b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn monomial_mul_into_overwrites_dirty_buffers() {
        let p = poly_i64(&[1, 2, 3, 4]);
        let mut out = poly_i64(&[9, 9, 9, 9]);
        p.monomial_mul_into(5, &mut out);
        assert_eq!(out, p.monomial_mul(5));
        p.monomial_mul_minus_one_into(3, &mut out);
        assert_eq!(out, p.monomial_mul_minus_one(3));
    }

    #[test]
    fn monomial_mul_minus_one_matches_definition() {
        let p = poly_i64(&[1, 2, 3, 4]);
        let d = p.monomial_mul_minus_one(3);
        let expected = &p.monomial_mul(3) - &p;
        assert_eq!(d, expected);
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let p = poly_i64(&[1, -2, 3, -4]);
        let q = poly_i64(&[10, 20, 30, 40]);
        assert_eq!(&(&p + &q) - &q, p);
        assert_eq!(-(-p.clone()), p);
    }

    #[test]
    fn dot_scalars_matches_manual_sum() {
        let p = Polynomial::from_coeffs(vec![
            Torus32::from_raw(100),
            Torus32::from_raw(200),
            Torus32::from_raw(300),
            Torus32::from_raw(400),
        ]);
        let s = [1i64, 0, -1, 2];
        let expected = Torus32::from_raw(100u32.wrapping_sub(300).wrapping_add(800));
        assert_eq!(p.dot_scalars(&s), expected);
    }

    #[test]
    fn torus_polynomial_rotation_wraps_sign() {
        let mut p = Polynomial::<Torus32>::zero(4);
        p[3] = Torus32::from_raw(7);
        let r = p.monomial_mul(1);
        assert_eq!(r[0], Torus32::from_raw(0u32.wrapping_sub(7)));
    }

    #[test]
    fn from_fn_and_map() {
        let p = Polynomial::from_fn(8, |j| j as i64);
        let q = p.map(|&c| c * 2);
        assert_eq!(q.coeffs()[7], 14);
    }
}
