//! A minimal complex-number type (f64 re/im).
//!
//! The transform-domain datapath of Morphling carries 64-bit complex
//! elements (32-bit real + 32-bit imaginary in hardware; we compute in f64
//! and model the narrower hardware precision separately). A local type
//! avoids pulling in an external dependency for a handful of operations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use morphling_math::Complex64;
///
/// let i = Complex64::new(0.0, 1.0);
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Create from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^(i·theta)` — a point on the unit circle.
    #[inline]
    pub fn from_polar_unit(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by the imaginary unit (a quarter-turn), cheaper than a full
    /// complex multiply — the FFT butterflies use this.
    #[inline]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }

    /// Scale both components by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.6}{:+.6}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}{:+.6}i", self.re, self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 3.25);
        let c = Complex64::new(2.0, 2.0);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(3.0, 4.0);
        let b = Complex64::new(-1.0, 2.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj().conj(), a);
        assert!((a * a.conj() - Complex64::from(a.norm_sqr())).abs() < 1e-12);
    }

    #[test]
    fn mul_i_is_quarter_turn() {
        let a = Complex64::new(2.0, 5.0);
        assert_eq!(a.mul_i(), a * Complex64::I);
    }

    #[test]
    fn polar_unit_lies_on_circle() {
        for k in 0..8 {
            let z = Complex64::from_polar_unit(k as f64 * std::f64::consts::FRAC_PI_4);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }
}
