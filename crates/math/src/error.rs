//! Error types for the math substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by fallible math-layer operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// Two operands had incompatible polynomial sizes.
    SizeMismatch {
        /// Size of the left operand.
        left: usize,
        /// Size of the right operand.
        right: usize,
    },
    /// A size parameter was not a power of two.
    NotPowerOfTwo(usize),
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::SizeMismatch { left, right } => {
                write!(f, "polynomial size mismatch: {left} vs {right}")
            }
            MathError::NotPowerOfTwo(n) => {
                write!(f, "size {n} is not a power of two")
            }
        }
    }
}

impl Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = MathError::SizeMismatch { left: 4, right: 8 };
        assert_eq!(e.to_string(), "polynomial size mismatch: 4 vs 8");
        let e = MathError::NotPowerOfTwo(3);
        assert_eq!(e.to_string(), "size 3 is not a power of two");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
