//! Torus and negacyclic polynomial arithmetic for the Morphling reproduction.
//!
//! This crate is the lowest layer of the stack. It provides:
//!
//! - [`Torus32`] / [`Torus64`]: elements of the discretized torus
//!   `T_q = {0, 1/q, ..., (q-1)/q}` represented as fixed-point machine words
//!   (`q = 2^32` or `2^64`), exactly as the paper's 32-bit datapath does.
//! - [`Polynomial`]: dense polynomials over an arbitrary coefficient type,
//!   interpreted in the negacyclic ring `Z_q[X]/(X^N + 1)` with `N` a power
//!   of two.
//! - Exact negacyclic multiplication ([`negacyclic`]) used as the
//!   correctness oracle for the FFT-based path in `morphling-transform`.
//! - Signed gadget decomposition ([`decompose`]) with base `β = 2^b` and
//!   level `l`, the operation the paper's Decomposition Unit implements.
//! - Noise and key sampling ([`sampling`]).
//! - A minimal complex-number type ([`Complex64`]) shared with the
//!   transform crate.
//!
//! # Example
//!
//! ```
//! use morphling_math::{Polynomial, Torus32};
//!
//! // X * (1 + X^(N-1)) = X - 1 in the negacyclic ring.
//! let n = 8;
//! let mut p = Polynomial::<Torus32>::zero(n);
//! p[0] = Torus32::from_raw(1);
//! p[n - 1] = Torus32::from_raw(1);
//! let rotated = p.monomial_mul(1);
//! assert_eq!(rotated[1], Torus32::from_raw(1));
//! assert_eq!(rotated[0], -Torus32::from_raw(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod complex;
pub mod decompose;
mod error;
pub mod negacyclic;
mod poly;
pub mod sampling;
mod torus;

pub use complex::Complex64;
pub use decompose::{DecompParams, SignedDecomposer};
pub use error::MathError;
pub use poly::Polynomial;
pub use torus::{Torus32, Torus64, TorusScalar};
