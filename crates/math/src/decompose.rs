//! Signed gadget decomposition (the paper's Decomposition Unit, §V-A.1).
//!
//! The decomposition of a torus element `x` with base `β = 2^b` and level
//! `l` produces digits `d_1, …, d_l ∈ [-β/2, β/2)` such that
//! `Σ_i d_i · q/β^i` is the closest approximation of `x` representable with
//! `b·l` bits, i.e. `|Σ_i d_i q/β^i − x| ≤ q / (2 β^l)` on the torus.
//!
//! Hardware-wise this is bit-slicing plus rounding, which is why the paper's
//! decomposition unit costs almost no area (Table IV).

use crate::poly::Polynomial;
use crate::torus::TorusScalar;

/// Parameters of a signed gadget decomposition: base `β = 2^base_log` and
/// number of levels `l`.
///
/// # Example
///
/// ```
/// use morphling_math::{DecompParams, SignedDecomposer, Torus32, TorusScalar};
///
/// let params = DecompParams::new(8, 2); // β = 2^8, l = 2
/// let dec = SignedDecomposer::<Torus32>::new(params);
/// let digits = dec.decompose_scalar(Torus32::from_f64(0.3));
/// assert_eq!(digits.len(), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DecompParams {
    base_log: u32,
    level: usize,
}

impl DecompParams {
    /// Create decomposition parameters.
    ///
    /// # Panics
    ///
    /// Panics if `base_log == 0` or `level == 0`.
    pub fn new(base_log: u32, level: usize) -> Self {
        assert!(base_log > 0, "decomposition base must be at least 2");
        assert!(level > 0, "decomposition level must be at least 1");
        Self { base_log, level }
    }

    /// `log2 β`.
    #[inline]
    pub fn base_log(&self) -> u32 {
        self.base_log
    }

    /// The base `β` itself.
    #[inline]
    pub fn base(&self) -> u64 {
        1u64 << self.base_log
    }

    /// The number of levels `l`.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Total number of significant bits kept, `b·l`.
    #[inline]
    pub fn total_bits(&self) -> u32 {
        self.base_log * self.level as u32
    }
}

/// A signed decomposer for a particular torus width.
///
/// Construction validates that `b·l` fits in the torus word, so
/// decomposition itself is panic-free.
#[derive(Clone, Copy, Debug)]
pub struct SignedDecomposer<T> {
    params: DecompParams,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: TorusScalar> SignedDecomposer<T> {
    /// Create a decomposer.
    ///
    /// # Panics
    ///
    /// Panics if `base_log * level` exceeds the torus width.
    pub fn new(params: DecompParams) -> Self {
        assert!(
            params.total_bits() <= T::BITS,
            "decomposition keeps {} bits but the torus has only {}",
            params.total_bits(),
            T::BITS
        );
        Self {
            params,
            _marker: std::marker::PhantomData,
        }
    }

    /// The decomposition parameters.
    #[inline]
    pub fn params(&self) -> DecompParams {
        self.params
    }

    /// Decompose a single torus element into `level` balanced digits,
    /// most-significant first (digit `i` carries weight `q/β^(i+1)`).
    pub fn decompose_scalar(&self, x: T) -> Vec<i64> {
        let mut digits = vec![0i64; self.params.level];
        self.decompose_scalar_into(x, &mut digits);
        digits
    }

    /// [`decompose_scalar`](Self::decompose_scalar) into a caller-owned
    /// digit buffer — the allocation-free core the hot path uses.
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != level`.
    pub fn decompose_scalar_into(&self, x: T, digits: &mut [i64]) {
        let b = self.params.base_log;
        let l = self.params.level;
        assert_eq!(digits.len(), l, "digit buffer length must equal the level");
        let total = b * l as u32;
        // Round to the closest multiple of q / β^l (round-half-up), then
        // take the top `total` bits as an unsigned integer.
        let raw = x.to_u64();
        let rounded: u64 = if total == T::BITS {
            raw
        } else {
            let drop = T::BITS - total;
            let half = 1u64 << (drop - 1);
            // Wrap within the torus word before shifting down.
            let wrapped = if T::BITS == 64 {
                raw.wrapping_add(half)
            } else {
                (raw + half) & ((1u64 << T::BITS) - 1)
            };
            wrapped >> drop
        };

        // Balanced (signed) digit extraction, least-significant first with
        // carry propagation, then reversed to most-significant first.
        let beta = 1u64 << b;
        let half_beta = beta >> 1;
        let mut carry: u64 = 0;
        let mut rest = rounded;
        for i in (0..l).rev() {
            let digit = (rest & (beta - 1)) + carry;
            rest >>= b;
            if digit >= half_beta {
                // A digit of β/2 or more is re-expressed as digit − β with a
                // carry into the next (more significant) digit. β/2 itself
                // maps to −β/2: digits end up in [−β/2, β/2).
                digits[i] = digit as i64 - beta as i64;
                carry = 1;
            } else {
                digits[i] = digit as i64;
                carry = 0;
            }
        }
        // A final carry out of the most significant digit corresponds to a
        // full wrap of the torus (adds q), which is 0 mod q — drop it.
    }

    /// Recompose digits back to the torus: `Σ_i d_i · q/β^(i+1)`.
    pub fn recompose_scalar(&self, digits: &[i64]) -> T {
        assert_eq!(digits.len(), self.params.level, "digit count mismatch");
        let b = self.params.base_log;
        let mut acc = T::ZERO;
        for (i, &d) in digits.iter().enumerate() {
            // Weight of level i is q/β^(i+1) = 2^(BITS - b(i+1)); the shift
            // is always in [0, BITS) because b(i+1) ≥ 1.
            let weight_shift = T::BITS - b * (i as u32 + 1);
            let unit = T::from_u64(1u64 << weight_shift);
            acc += unit.scalar_mul(d);
        }
        acc
    }

    /// Decompose every coefficient of a polynomial, returning `level`
    /// digit-polynomials, most-significant level first — exactly the stream
    /// the paper's decomposition unit feeds to the pipelined FFT.
    pub fn decompose_poly(&self, p: &Polynomial<T>) -> Vec<Polynomial<i64>> {
        let mut out = vec![Polynomial::zero(p.len()); self.params.level];
        self.decompose_poly_into(p, &mut out);
        out
    }

    /// [`decompose_poly`](Self::decompose_poly) into caller-owned digit
    /// polynomials, bit-identical and allocation-free — the decomposition
    /// unit of the blind-rotation hot path.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != level` or any digit polynomial's size
    /// differs from `p.len()`.
    pub fn decompose_poly_into(&self, p: &Polynomial<T>, out: &mut [Polynomial<i64>]) {
        let l = self.params.level;
        assert_eq!(out.len(), l, "digit polynomial count must equal the level");
        for dp in out.iter_mut() {
            assert_eq!(dp.len(), p.len(), "digit polynomial size mismatch");
        }
        // `base_log ≥ 1` and `total_bits ≤ 64` bound the level by 64, so a
        // stack buffer covers every valid decomposer.
        let mut digits = [0i64; 64];
        for (j, &c) in p.iter().enumerate() {
            self.decompose_scalar_into(c, &mut digits[..l]);
            for (dp, &d) in out.iter_mut().zip(&digits[..l]) {
                dp[j] = d;
            }
        }
    }

    /// The worst-case absolute rounding error of the decomposition, as a
    /// fraction of the torus: `1 / (2 β^l)` (or 0 when `b·l` covers the
    /// whole word).
    pub fn max_error(&self) -> f64 {
        if self.params.total_bits() >= T::BITS {
            0.0
        } else {
            0.5 / (self.params.base() as f64).powi(self.params.level as i32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{Torus32, Torus64};

    fn torus_distance(a: f64, b: f64) -> f64 {
        let d = (a - b).rem_euclid(1.0);
        d.min(1.0 - d)
    }

    #[test]
    fn digits_are_balanced() {
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(4, 3));
        let beta_half = 8i64;
        for raw in [
            0u32,
            1,
            0xFFFF_FFFF,
            0x8000_0000,
            0x7FFF_FFFF,
            0x1234_5678,
            0xDEAD_BEEF,
        ] {
            for d in dec.decompose_scalar(Torus32::from_raw(raw)) {
                assert!(
                    (-beta_half..beta_half).contains(&d),
                    "digit {d} out of range for {raw:#x}"
                );
            }
        }
    }

    #[test]
    fn recompose_error_is_bounded() {
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(6, 3));
        let bound = dec.max_error() + 1e-12;
        for raw in (0..1000u32).map(|i| i.wrapping_mul(0x9E37_79B9)) {
            let x = Torus32::from_raw(raw);
            let digits = dec.decompose_scalar(x);
            let back = dec.recompose_scalar(&digits);
            let err = torus_distance(x.to_f64(), back.to_f64());
            assert!(err <= bound, "x={raw:#x} err={err} bound={bound}");
        }
    }

    #[test]
    fn full_width_decomposition_is_exact() {
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(8, 4));
        for raw in [0u32, 1, 0x8000_0000, 0xFFFF_FFFF, 0xCAFE_BABE] {
            let x = Torus32::from_raw(raw);
            assert_eq!(
                dec.recompose_scalar(&dec.decompose_scalar(x)),
                x,
                "raw={raw:#x}"
            );
        }
    }

    #[test]
    fn zero_decomposes_to_zero_digits() {
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(8, 2));
        assert_eq!(dec.decompose_scalar(Torus32::ZERO), vec![0, 0]);
    }

    #[test]
    fn poly_decomposition_matches_scalar() {
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(7, 2));
        let p = Polynomial::from_fn(8, |j| {
            Torus32::from_raw((j as u32).wrapping_mul(0x0135_7924))
        });
        let digit_polys = dec.decompose_poly(&p);
        assert_eq!(digit_polys.len(), 2);
        for (j, &c) in p.iter().enumerate() {
            let digits = dec.decompose_scalar(c);
            for (i, dp) in digit_polys.iter().enumerate() {
                assert_eq!(dp[j], digits[i]);
            }
        }
    }

    #[test]
    fn torus64_decomposition_error_bounded() {
        let dec = SignedDecomposer::<Torus64>::new(DecompParams::new(10, 4));
        let bound = dec.max_error() + 1e-15;
        for i in 0..200u64 {
            let x = Torus64::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let back = dec.recompose_scalar(&dec.decompose_scalar(x));
            let err = torus_distance(x.to_f64(), back.to_f64());
            assert!(err <= bound, "i={i} err={err}");
        }
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(6, 3));
        let p = Polynomial::from_fn(16, |j| {
            Torus32::from_raw((j as u32).wrapping_mul(0x9E37_79B9))
        });
        let mut out = vec![Polynomial::zero(16); 3];
        dec.decompose_poly_into(&p, &mut out);
        assert_eq!(dec.decompose_poly(&p), out);
        let x = Torus32::from_raw(0xDEAD_BEEF);
        let mut digits = [0i64; 3];
        dec.decompose_scalar_into(x, &mut digits);
        assert_eq!(digits.to_vec(), dec.decompose_scalar(x));
    }

    #[test]
    #[should_panic(expected = "count must equal")]
    fn poly_into_rejects_wrong_level_count() {
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(6, 3));
        let p = Polynomial::<Torus32>::zero(8);
        let mut out = vec![Polynomial::zero(8); 2];
        dec.decompose_poly_into(&p, &mut out);
    }

    #[test]
    #[should_panic(expected = "keeps")]
    fn rejects_too_many_bits() {
        let _ = SignedDecomposer::<Torus32>::new(DecompParams::new(8, 5));
    }

    #[test]
    fn half_base_digit_maps_to_negative_half() {
        // x = 0.5 with β=2, l=1: digit must be -1 (not +1), carry dropped.
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(1, 1));
        assert_eq!(dec.decompose_scalar(Torus32::HALF), vec![-1]);
    }
}
