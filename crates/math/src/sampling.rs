//! Randomness: uniform torus masks, binary secret keys, and modular
//! Gaussian noise.
//!
//! All sampling goes through [`rand::Rng`] so tests can use seeded
//! deterministic generators.

use rand::Rng;

use crate::poly::Polynomial;
use crate::torus::TorusScalar;

/// Sample a uniformly random torus element (an LWE/GLWE mask coefficient).
pub fn uniform_torus<T: TorusScalar, R: Rng + ?Sized>(rng: &mut R) -> T {
    T::from_u64(rng.gen::<u64>())
}

/// Sample a uniformly random torus polynomial of size `n`.
pub fn uniform_torus_poly<T: TorusScalar, R: Rng + ?Sized>(n: usize, rng: &mut R) -> Polynomial<T> {
    Polynomial::from_fn(n, |_| uniform_torus(rng))
}

/// Sample a uniform binary vector (a secret key in `B^n = {0,1}^n`).
pub fn binary_vector<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<i64> {
    (0..n).map(|_| i64::from(rng.gen::<bool>())).collect()
}

/// Sample a binary polynomial (a GLWE secret-key component in `B_N[X]`).
pub fn binary_poly<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Polynomial<i64> {
    Polynomial::from_fn(n, |_| i64::from(rng.gen::<bool>()))
}

/// Sample a zero-mean Gaussian on the torus with standard deviation `std`
/// (expressed as a fraction of the torus, e.g. `2^-25`), rounded to the
/// nearest representable element.
///
/// Uses the Box–Muller transform; one normal deviate per call.
pub fn gaussian_torus<T: TorusScalar, R: Rng + ?Sized>(std: f64, rng: &mut R) -> T {
    T::from_f64(std * standard_normal(rng))
}

/// Sample a torus polynomial with i.i.d. Gaussian coefficients.
pub fn gaussian_torus_poly<T: TorusScalar, R: Rng + ?Sized>(
    n: usize,
    std: f64,
    rng: &mut R,
) -> Polynomial<T> {
    Polynomial::from_fn(n, |_| gaussian_torus(std, rng))
}

/// A standard normal deviate via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would make ln(0) = -inf.
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::Torus32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binary_vectors_are_binary() {
        let mut rng = StdRng::seed_from_u64(1);
        for &v in &binary_vector(1000, &mut rng) {
            assert!(v == 0 || v == 1);
        }
    }

    #[test]
    fn binary_vector_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let ones: i64 = binary_vector(10_000, &mut rng).iter().sum();
        assert!((3500..6500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn gaussian_has_expected_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let std = 2f64.powi(-10);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| gaussian_torus::<Torus32, _>(std, &mut rng).to_f64_signed())
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(
            mean.abs() < 5.0 * std / (samples.len() as f64).sqrt() + 1e-9,
            "mean = {mean}"
        );
        let ratio = var.sqrt() / std;
        assert!((0.95..1.05).contains(&ratio), "std ratio = {ratio}");
    }

    #[test]
    fn uniform_torus_poly_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let p: Polynomial<Torus32> = uniform_torus_poly(64, &mut rng);
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let a: Polynomial<Torus32> = uniform_torus_poly(16, &mut StdRng::seed_from_u64(7));
        let b: Polynomial<Torus32> = uniform_torus_poly(16, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_torus32_covers_high_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let any_high = (0..100)
            .map(|_| uniform_torus::<Torus32, _>(&mut rng))
            .any(|t| t.into_raw() > u32::MAX / 2);
        assert!(any_high);
    }
}
