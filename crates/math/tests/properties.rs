//! Property-based tests for the math substrate.

use morphling_math::negacyclic::{mul_int_int, mul_int_torus32};
use morphling_math::{DecompParams, Polynomial, SignedDecomposer, Torus32, TorusScalar};
use proptest::prelude::*;

fn torus_poly(n: usize) -> impl Strategy<Value = Polynomial<Torus32>> {
    prop::collection::vec(any::<u32>(), n)
        .prop_map(|v| Polynomial::from_coeffs(v.into_iter().map(Torus32::from_raw).collect()))
}

fn int_poly(n: usize, bound: i64) -> impl Strategy<Value = Polynomial<i64>> {
    prop::collection::vec(-bound..bound, n).prop_map(Polynomial::from_coeffs)
}

fn torus_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(1.0);
    d.min(1.0 - d)
}

proptest! {
    #[test]
    fn torus_add_commutes(a: u32, b: u32) {
        let (a, b) = (Torus32::from_raw(a), Torus32::from_raw(b));
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn torus_add_neg_is_zero(a: u32) {
        let a = Torus32::from_raw(a);
        prop_assert_eq!(a + (-a), Torus32::ZERO);
    }

    #[test]
    fn torus_scalar_mul_distributes(a: u32, b: u32, k in -1000i64..1000) {
        let (a, b) = (Torus32::from_raw(a), Torus32::from_raw(b));
        prop_assert_eq!((a + b).scalar_mul(k), a.scalar_mul(k) + b.scalar_mul(k));
    }

    #[test]
    fn encode_decode_roundtrips(m in 0u64..256, p_log in 1u32..9) {
        let p = 1u64 << p_log;
        let m = m % p;
        prop_assert_eq!(Torus32::encode(m, p).decode(p), m);
    }

    #[test]
    fn mod_switch_error_is_half_step(raw: u32, n_log in 8u32..13) {
        let two_n = 1u64 << (n_log + 1);
        let t = Torus32::from_raw(raw);
        let switched = t.mod_switch(two_n) as f64 / two_n as f64;
        prop_assert!(torus_distance(switched, t.to_f64()) <= 0.5 / two_n as f64 + 1e-12);
    }

    #[test]
    fn rotation_composes(p in torus_poly(16), a in -64i64..64, b in -64i64..64) {
        prop_assert_eq!(p.monomial_mul(a).monomial_mul(b), p.monomial_mul(a + b));
    }

    #[test]
    fn rotation_by_2n_is_identity(p in torus_poly(16)) {
        prop_assert_eq!(p.monomial_mul(32), p);
    }

    #[test]
    fn rotation_preserves_sums_up_to_sign(p in torus_poly(8), a in 0i64..16) {
        // |coefficient multiset| is preserved by rotation (up to negation).
        let r = p.monomial_mul(a);
        let mut orig: Vec<u32> = p.iter().map(|c| c.into_raw().min(c.into_raw().wrapping_neg())).collect();
        let mut rot: Vec<u32> = r.iter().map(|c| c.into_raw().min(c.into_raw().wrapping_neg())).collect();
        orig.sort_unstable();
        rot.sort_unstable();
        prop_assert_eq!(orig, rot);
    }

    #[test]
    fn negacyclic_mul_associates_with_monomials(
        p in int_poly(8, 100),
        q in int_poly(8, 100),
        a in 0i64..16,
    ) {
        // (X^a · p) · q == X^a · (p · q)
        let lhs = mul_int_int(&p.monomial_mul(a), &q);
        let rhs = mul_int_int(&p, &q).monomial_mul(a);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn negacyclic_int_torus_matches_int_int_on_small_values(
        d in int_poly(8, 50),
        t in int_poly(8, 50),
    ) {
        // Embed the small integer poly into the torus (value * 1) and check
        // the torus product agrees with the integer product mod 2^32.
        let t_torus = t.map(|&c| Torus32::from_raw(c as u32));
        let exact = mul_int_int(&d, &t);
        let torus = mul_int_torus32(&d, &t_torus);
        for j in 0..8 {
            prop_assert_eq!(torus[j].into_raw(), exact[j] as u32);
        }
    }

    #[test]
    fn decomposition_error_bounded(raw: u32, b in 1u32..9, l in 1usize..4) {
        prop_assume!(b * l as u32 <= 32);
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(b, l));
        let x = Torus32::from_raw(raw);
        let digits = dec.decompose_scalar(x);
        let half_beta = (1i64 << b) / 2;
        for &d in &digits {
            prop_assert!((-half_beta..half_beta).contains(&d));
        }
        let back = dec.recompose_scalar(&digits);
        let err = torus_distance(back.to_f64(), x.to_f64());
        prop_assert!(err <= dec.max_error() + 1e-12, "err={} bound={}", err, dec.max_error());
    }

    #[test]
    fn decomposition_of_negation_negates_digits_recomposition(raw: u32, b in 2u32..8, l in 1usize..4) {
        prop_assume!(b * l as u32 <= 32);
        let dec = SignedDecomposer::<Torus32>::new(DecompParams::new(b, l));
        let x = Torus32::from_raw(raw);
        // decompose(-x) recomposes to -(recompose(decompose(x))) up to the
        // rounding tie direction; check both are within 2*max_error of -x.
        let back_neg = dec.recompose_scalar(&dec.decompose_scalar(-x));
        let err = torus_distance(back_neg.to_f64(), (-x).to_f64());
        prop_assert!(err <= dec.max_error() + 1e-12);
    }
}
