//! Quickstart: encrypt, compute homomorphically, bootstrap, decrypt.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use morphling_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // Set I is the paper's 80-bit benchmark set (N=1024, n=500).
    let params = ParamSet::I.params();
    println!(
        "parameter set {}: N={}, n={}, k={}",
        params.name, params.poly_size, params.lwe_dim, params.glwe_dim
    );

    println!(
        "generating keys (BSK: {} GGSW ciphertexts)…",
        params.lwe_dim
    );
    let client = ClientKey::generate(params.clone(), &mut rng);
    let server = ServerKey::new(&client, &mut rng);

    // Boolean gates via gate bootstrapping.
    let a = client.encrypt_bool(true, &mut rng);
    let b = client.encrypt_bool(false, &mut rng);
    let nand = server.nand(&a, &b);
    let xor = server.xor(&a, &b);
    println!("NAND(true, false) = {}", client.decrypt_bool(&nand));
    println!("XOR(true, false)  = {}", client.decrypt_bool(&xor));

    // Programmable bootstrapping: evaluate an arbitrary function on the
    // encrypted message while resetting its noise.
    let p = params.plaintext_modulus;
    let square = Lut::from_fn(params.poly_size, p, |m| (m * m) % p);
    for m in 0..p {
        let ct = client.encrypt(m, &mut rng);
        let out = server.programmable_bootstrap(&ct, &square);
        println!("PBS: {m}² mod {p} = {}", client.decrypt(&out));
        assert_eq!(client.decrypt(&out), (m * m) % p);
    }
    println!("all results verified against plaintext ✓");
}
