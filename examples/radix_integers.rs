//! Multi-ciphertext ("radix") encrypted integers — the paper's §I: "the
//! TFHE scheme encrypts large-precision plaintext into multiple
//! ciphertexts … the computation of multiple small-parameter ciphertexts",
//! which is exactly the independent per-digit work Morphling batches
//! across its VPE rows.
//!
//! ```text
//! cargo run --release --example radix_integers
//! ```

use morphling_repro::prelude::*;
use morphling_repro::tfhe::radix::{RadixClient, RadixServer, RadixSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    // 8-bit integers as four base-4 digits, each with carry space (p=16).
    let spec = RadixSpec::new(2, 4);
    let params = ParamSet::TestMedium
        .params()
        .with_plaintext_modulus(spec.digit_modulus());
    let client = ClientKey::generate(params, &mut rng);
    let server = ServerKey::new(&client, &mut rng);

    println!(
        "encrypted 8-bit arithmetic ({} digits of base {}):",
        spec.digits,
        spec.base()
    );
    for (x, y) in [(37u64, 91u64), (200, 55), (255, 255)] {
        let a = client.encrypt_radix(x, spec, &mut rng);
        let b = client.encrypt_radix(y, spec, &mut rng);
        // Leveled digit-wise add fills the carry space …
        let sum = server.radix_add(&a, &b);
        // … and carry propagation bootstraps every digit clean again.
        let clean = server.propagate_carries(&sum);
        let got = client.decrypt_radix(&clean);
        println!(
            "  {x:3} + {y:3} = {got:3} (mod 256)   [{} digit bootstraps]",
            2 * spec.digits
        );
        assert_eq!(got, (x + y) & 0xFF);
    }

    println!("\nencrypted 8-bit multiplication:");
    for (x, y) in [(12u64, 13u64), (15, 17)] {
        let a = client.encrypt_radix(x, spec, &mut rng);
        let b = client.encrypt_radix(y, spec, &mut rng);
        let prod = server.radix_mul(&a, &b);
        let got = client.decrypt_radix(&prod);
        println!("  {x:3} * {y:3} = {got:3} (mod 256)");
        assert_eq!(got, (x * y) & 0xFF);
    }

    println!("\nencrypted 8-bit comparison:");
    for (x, y) in [(100u64, 99u64), (99, 100), (42, 42)] {
        let a = client.encrypt_radix(x, spec, &mut rng);
        let b = client.encrypt_radix(y, spec, &mut rng);
        let ge = server.radix_ge(&a, &b);
        println!("  {x} >= {y} → {}", client.decrypt(&ge) == 1);
        assert_eq!(client.decrypt(&ge), u64::from(x >= y));
    }

    // What the accelerator makes of it: each digit is an independent
    // small-parameter bootstrap — exactly what fills the VPE rows.
    let sim = Simulator::new(ArchConfig::morphling_default());
    let p128 = ParamSet::III.params();
    let pbs_per_add = 2 * spec.digits as u64;
    let adds_per_sec = 1.0 / sim.batch_time_seconds(&p128, pbs_per_add, spec.digits as u64);
    println!(
        "\nMorphling projection (set III): one 8-bit encrypted add = {pbs_per_add} PBS → \
         {adds_per_sec:.0} adds/s per dependency chain"
    );
    println!("all results verified ✓");
}
