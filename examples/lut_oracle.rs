//! Programmable bootstrapping as a lookup-table oracle: evaluate sign,
//! ReLU, and modular arithmetic on encrypted values — the primitive behind
//! every application in the paper's Table VI.
//!
//! ```text
//! cargo run --release --example lut_oracle
//! ```

use morphling_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let params = ParamSet::TestMedium.params(); // p = 8
    let p = params.plaintext_modulus;
    let client = ClientKey::generate(params.clone(), &mut rng);
    let server = ServerKey::new(&client, &mut rng);

    // Encode signed values as offset-binary: v ∈ [-4, 4) stored as v + 4.
    let offset = (p / 2) as i64;
    let encode = |v: i64| (v + offset) as u64;
    let decode = |m: u64| m as i64 - offset;

    // ReLU over the offset encoding (the DeepCNN/VGG activation).
    let relu = Lut::from_fn(params.poly_size, p, move |m| {
        let v = m as i64 - offset;
        (v.max(0) + offset) as u64
    });
    // Sign: 1 if v ≥ 0 else 0 (the XG-Boost comparison).
    let sign = Lut::from_fn(params.poly_size, p, move |m| {
        u64::from(m as i64 - offset >= 0)
    });
    // Modular triple: (3v) mod p on raw residues.
    let triple = Lut::from_fn(params.poly_size, p, |m| (3 * m) % p);

    println!("   v   relu(v)  sign(v)  3v mod 8");
    for v in -4i64..4 {
        let ct = client.encrypt(encode(v), &mut rng);
        let r = decode(client.decrypt(&server.programmable_bootstrap(&ct, &relu)));
        let s = client.decrypt(&server.programmable_bootstrap(&ct, &sign));
        let t = client.decrypt(&server.programmable_bootstrap(&ct, &triple));
        println!("  {v:>2}   {r:>6}  {s:>7}  {t:>8}");
        assert_eq!(r, v.max(0));
        assert_eq!(s, u64::from(v >= 0));
        assert_eq!(t, (3 * encode(v)) % p);
    }
    println!("all LUT evaluations verified ✓");
}
