//! Drive the cycle-accurate Morphling simulator: Table V rows, the
//! iteration profile, reuse-mode comparison, and a scheduled 64-ciphertext
//! super-group (Fig 6).
//!
//! ```text
//! cargo run --release --example accelerator_sim
//! ```

use morphling_repro::core::sched::{HwScheduler, SwScheduler, Workload};
use morphling_repro::prelude::*;

fn main() {
    let cfg = ArchConfig::morphling_default();
    let sim = Simulator::new(cfg.clone());

    println!(
        "Morphling default: {} XPUs × {}×{} VPEs, {} FFT + {} IFFT per XPU, {} GHz",
        cfg.xpus, cfg.vpe_rows, cfg.vpe_cols, cfg.ffts_per_xpu, cfg.iffts_per_xpu, cfg.clock_ghz
    );

    println!("\nbootstrapping latency / throughput (Table V):");
    for set in [ParamSet::I, ParamSet::II, ParamSet::III, ParamSet::IV] {
        let params = set.params();
        let r = sim.bootstrap_batch(&params, 16);
        println!(
            "  set {:>3}: {:.2} ms, {:>7.0} BS/s (iteration {} cycles, bottleneck: {})",
            params.name,
            r.latency_ms(),
            r.throughput_bs_per_s(),
            r.iter_cycles,
            r.iter.bottleneck()
        );
    }

    println!("\ntransform-domain reuse at set C (same resources):");
    let params = ParamSet::C.params();
    for reuse in ReuseMode::ALL {
        let r = Simulator::new(cfg.clone().with_reuse(reuse).with_merge_split(false))
            .bootstrap_batch(&params, 16);
        println!(
            "  {:<22} {:>8.0} BS/s",
            reuse.to_string(),
            r.throughput_bs_per_s()
        );
    }

    println!("\nscheduling a 64-ciphertext super-group (Fig 6) at set I:");
    let params = ParamSet::I.params();
    let sw = SwScheduler::new(cfg.clone());
    let hw = HwScheduler::new(cfg.clone());
    let prog = sw.compile(&Workload::independent(64), &params);
    let tl = hw.run(&prog, &params);
    println!("  instructions: {}", prog.len());
    println!(
        "  makespan:     {:.3} ms",
        tl.makespan_cycles() as f64 / cfg.clock_hz() * 1e3
    );
    for unit in [
        morphling_repro::core::isa::UnitClass::Xpu,
        morphling_repro::core::isa::UnitClass::Vpu,
        morphling_repro::core::isa::UnitClass::Dma,
    ] {
        println!(
            "  {unit} utilization: {:5.1}%",
            tl.utilization(unit) * 100.0
        );
    }
}
