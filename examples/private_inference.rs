//! End-to-end private inference: an encrypted decision tree and an
//! encrypted quantized MLP (the functional cores of the paper's XG-Boost
//! and DeepCNN workloads), plus the projected Table VI execution times for
//! the full-size models on the accelerator.
//!
//! ```text
//! cargo run --release --example private_inference
//! ```

use morphling_repro::apps::functional::{
    DecisionTree, EncryptedMlp, EncryptedTreeEvaluator, MlpModel,
};
use morphling_repro::apps::{models, runtime, xgboost::XgBoostModel};
use morphling_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let params = ParamSet::TestMedium.params();
    let client = ClientKey::generate(params, &mut rng);
    let server = std::sync::Arc::new(ServerKey::builder().build(&client, &mut rng));
    // One persistent worker pool serves every batch below — the software
    // analogue of Morphling's always-resident bootstrapping cores.
    let engine = BootstrapEngine::new(std::sync::Arc::clone(&server));

    // 1. Encrypted decision tree (XG-Boost's primitive), its three
    //    oblivious comparisons batched through the engine as one wave.
    println!("encrypted decision tree (4 programmable bootstraps/inference):");
    let tree = DecisionTree {
        root: (0, 4),
        left: (1, 2),
        right: (1, 6),
        leaves: [0, 1, 2, 3],
    };
    let eval = EncryptedTreeEvaluator::new(&server);
    for (x0, x1) in [(2u64, 1u64), (2, 5), (6, 3), (6, 7)] {
        let feats = vec![client.encrypt(x0, &mut rng), client.encrypt(x1, &mut rng)];
        let class = client.decrypt(
            &eval
                .classify_batched(&engine, &tree, &feats)
                .expect("engine"),
        );
        println!("  features ({x0}, {x1}) → class {class}");
        assert_eq!(class, tree.classify_clear(&[x0, x1]));
    }

    // 2. Encrypted quantized MLP (DeepCNN's primitive), hidden-layer
    //    ReLUs batched through a pool on its own key.
    println!("\nencrypted 2-2-1 MLP (3 programmable bootstraps/inference):");
    let mut rng2 = StdRng::seed_from_u64(12);
    let params16 = ParamSet::TestMedium.params().with_plaintext_modulus(16);
    let client16 = ClientKey::generate(params16, &mut rng2);
    let server16 = std::sync::Arc::new(ServerKey::builder().build(&client16, &mut rng2));
    let engine16 = BootstrapEngine::new(std::sync::Arc::clone(&server16));
    let mlp = EncryptedMlp::new(&server16);
    let model = MlpModel::demo();
    for (x0, x1) in [(0u64, 0u64), (1, 3), (3, 1), (3, 3)] {
        let c0 = client16.encrypt(x0, &mut rng2);
        let c1 = client16.encrypt(x1, &mut rng2);
        let class = client16.decrypt(
            &mlp.infer_batched(&engine16, &model, &c0, &c1)
                .expect("engine"),
        );
        println!("  input ({x0}, {x1}) → class {class}");
        assert_eq!(class, model.infer_clear(x0, x1));
    }
    let stats = engine.stats();
    println!(
        "\nengine: {} batches, {} bootstraps, {:.1} BS/s per core",
        stats.batches,
        stats.bootstraps,
        stats.bootstraps_per_core_sec()
    );

    // 3. Full-size Table VI projections on the accelerator.
    println!("\nprojected full-model execution (Table VI):");
    let rt = runtime::AppRuntime::paper_default();
    let workloads = [
        (
            "XG-Boost (100 trees, depth 6)",
            XgBoostModel::paper_benchmark().workload(),
        ),
        ("DeepCNN-20", models::deep_cnn(20).workload()),
        ("DeepCNN-100", models::deep_cnn(100).workload()),
        ("VGG-9", models::vgg9().workload()),
    ];
    for (name, w) in workloads {
        let est = runtime::estimate(&w, &rt);
        println!(
            "  {:<30} Morphling {:>7.3} s | CPU {:>8.2} s | speedup {:>4.0}x",
            name,
            est.morphling_seconds,
            est.cpu_seconds,
            est.speedup()
        );
    }
    println!("\nall encrypted results matched plaintext ✓");
}
