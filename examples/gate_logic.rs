//! An 8-bit encrypted ripple-carry adder built entirely from bootstrapped
//! gates — the TFHE workload family Morphling's scheduler batches.
//!
//! ```text
//! cargo run --release --example gate_logic
//! ```

use morphling_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct EncryptedByte(Vec<LweCiphertext>);

fn encrypt_byte(client: &ClientKey, value: u8, rng: &mut StdRng) -> EncryptedByte {
    EncryptedByte(
        (0..8)
            .map(|i| client.encrypt_bool(value >> i & 1 == 1, rng))
            .collect(),
    )
}

fn decrypt_byte(client: &ClientKey, byte: &EncryptedByte) -> u8 {
    byte.0
        .iter()
        .enumerate()
        .map(|(i, ct)| u8::from(client.decrypt_bool(ct)) << i)
        .sum()
}

/// Full adder: (sum, carry-out) — 5 bootstrapped gates per bit.
fn full_adder(
    server: &ServerKey,
    a: &LweCiphertext,
    b: &LweCiphertext,
    cin: &LweCiphertext,
) -> (LweCiphertext, LweCiphertext) {
    let axb = server.xor(a, b);
    let sum = server.xor(&axb, cin);
    let carry = server.or(&server.and(a, b), &server.and(cin, &axb));
    (sum, carry)
}

fn add_bytes(
    server: &ServerKey,
    client: &ClientKey,
    a: &EncryptedByte,
    b: &EncryptedByte,
    rng: &mut StdRng,
) -> EncryptedByte {
    let mut carry = client.encrypt_bool(false, rng);
    let mut out = Vec::with_capacity(8);
    for i in 0..8 {
        let (s, c) = full_adder(server, &a.0[i], &b.0[i], &carry);
        out.push(s);
        carry = c;
    }
    EncryptedByte(out)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // The fast test set keeps this demo snappy; swap for ParamSet::I to
    // run at the paper's 80-bit parameters.
    let client = ClientKey::generate(ParamSet::Test.params(), &mut rng);
    let server = ServerKey::new(&client, &mut rng);

    for (x, y) in [(17u8, 25u8), (200, 100), (255, 1), (83, 172)] {
        let a = encrypt_byte(&client, x, &mut rng);
        let b = encrypt_byte(&client, y, &mut rng);
        let sum = add_bytes(&server, &client, &a, &b, &mut rng);
        let got = decrypt_byte(&client, &sum);
        println!("{x:3} + {y:3} = {got:3} (mod 256)   [40 bootstrapped gates]");
        assert_eq!(got, x.wrapping_add(y));
    }
    println!("all sums verified ✓");
}
