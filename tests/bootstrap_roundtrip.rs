//! Root-crate integration coverage for the bare `cargo test` entry point:
//! a full encrypt → programmable-bootstrap → decrypt round trip (plain,
//! workspace, and engine paths) and an accelerator-simulator smoke test,
//! all through the umbrella re-exports.

use std::sync::Arc;

use morphling_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Encrypt → PBS → decrypt through every serving path the crate offers:
/// the plain `ServerKey` call, the caller-owned-workspace call (which must
/// be bit-identical), and the persistent `BootstrapEngine` pool.
#[test]
fn bootstrap_round_trip_across_all_paths() {
    let mut rng = StdRng::seed_from_u64(11);
    let params = ParamSet::Test.params();
    let client = ClientKey::generate(params.clone(), &mut rng);
    let server = Arc::new(ServerKey::builder().build(&client, &mut rng));
    let lut = Lut::from_fn(params.poly_size, 4, |m| (3 * m) % 4);

    let cts: Vec<_> = (0..4).map(|m| client.encrypt(m, &mut rng)).collect();

    // Plain path.
    let plain: Vec<_> = cts
        .iter()
        .map(|ct| server.programmable_bootstrap(ct, &lut))
        .collect();
    for (m, out) in plain.iter().enumerate() {
        assert_eq!(client.decrypt(out), (3 * m as u64) % 4, "plain m={m}");
    }

    // Workspace path: one warm workspace across the whole batch,
    // bit-identical outputs.
    let mut ws = server.workspace();
    for (ct, want) in cts.iter().zip(&plain) {
        let out = server
            .try_programmable_bootstrap_with(ct, &lut, &mut ws)
            .expect("workspace bootstrap");
        assert_eq!(&out, want, "workspace path diverged from plain path");
    }

    // Engine path: the worker pool (each worker holds its own long-lived
    // workspace) returns the same ciphertexts in order, through the
    // unified `Bootstrapper` batch API.
    let engine = BootstrapEngine::builder()
        .workers(2)
        .build(Arc::clone(&server))
        .expect("nonzero workers");
    let req = BatchRequest::shared(cts.clone(), lut.clone());
    let pooled = engine.try_bootstrap_batch(&req).expect("engine batch");
    assert_eq!(pooled, plain, "engine path diverged from plain path");
    assert_eq!(engine.stats().bootstraps, 4);
    assert!(engine.stats().mean_bootstrap_time().is_some());

    // Dispatcher path: the dynamic-batching front-end coalesces the same
    // requests and returns the same bits.
    let dispatcher = Dispatcher::new(Arc::clone(&server));
    let dispatched = dispatcher
        .try_bootstrap_batch(&req)
        .expect("dispatcher batch");
    assert_eq!(dispatched, plain, "dispatcher path diverged");
    assert_eq!(dispatcher.stats().completed, 4);
}

/// The accelerator model answers through the umbrella: a simulated
/// bootstrap batch at a paper parameter set reports nonzero throughput,
/// and reuse never slows it down.
#[test]
fn simulator_smoke_through_umbrella() {
    let params = ParamSet::I.params();
    let sim = Simulator::new(ArchConfig::morphling_default());
    let run = sim.bootstrap_batch(&params, 16);
    let tput = run.throughput_bs_per_s();
    assert!(tput > 0.0, "simulated throughput must be positive");

    let no_reuse = Simulator::new(ArchConfig::morphling_default().with_reuse(ReuseMode::NoReuse))
        .bootstrap_batch(&params, 16)
        .throughput_bs_per_s();
    assert!(
        tput >= no_reuse,
        "reuse must not reduce throughput ({tput} vs {no_reuse})"
    );
}
