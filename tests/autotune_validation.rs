//! End-to-end validation of the simulator-in-the-loop autotuner: the
//! loop the `report autotune` subcommand runs, asserted as a test.
//!
//! Calibrate a [`ServiceModel`] from a live engine run, search the
//! serving-config space for a load/SLO derived from that calibration (so
//! the target adapts to debug vs release builds and fast vs slow hosts),
//! build the recommended stack — `ServingConfig::build_engine` +
//! `Dispatcher::from_config` — and replay the *same seeded arrival
//! schedule* the simulator scored through the real dispatcher. The
//! recommendation must meet the requested p99 SLO in reality, and the
//! predicted and measured p99 must agree within the DESIGN.md §15 bound.

use std::sync::Arc;
use std::time::Duration;

use morphling_repro::prelude::*;
use morphling_repro::tfhe::autotune::{autotune, p99_agree, replay_open_loop};
use morphling_repro::tfhe::BatchRequest;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn recommended_config_meets_its_slo_on_the_real_dispatcher() {
    let mut rng = StdRng::seed_from_u64(0xCA11B);
    let params = ParamSet::Test.params();
    let p = params.plaintext_modulus;
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = Arc::new(ServerKey::new(&ck, &mut rng));
    let lut = Arc::new(Lut::identity(params.poly_size, p));
    let ct = ck.encrypt(1 % p, &mut rng);

    // Calibrate from a live engine: warm one wave (transform tables,
    // thread wake-up), then measure a clean one.
    let workers = 2usize;
    let engine = BootstrapEngine::builder()
        .workers(workers)
        .build(Arc::clone(&sk))
        .expect("nonzero workers");
    let wave: Vec<_> = (0..workers * 2).map(|_| ct.clone()).collect();
    engine
        .try_bootstrap_batch(&BatchRequest::shared(
            wave[..workers].to_vec(),
            (*lut).clone(),
        ))
        .expect("warm-up wave");
    engine.reset_stats();
    engine
        .try_bootstrap_batch(&BatchRequest::shared(wave, (*lut).clone()))
        .expect("calibration wave");
    let stats = engine.stats();
    drop(engine);
    let model = ServiceModel::from_engine_stats(&stats).expect("bootstraps were measured");
    let bootstrap = Duration::from_nanos(model.bootstrap_ns);

    // A target this host can meet in any build profile: ~30% of one
    // core's throughput, p99 at 10 bootstrap times (floored at 20 ms so
    // scheduling jitter never dominates on fast hosts).
    let rate = (0.3 / bootstrap.as_secs_f64()).clamp(2.0, 500.0);
    let slo = (bootstrap * 10).max(Duration::from_millis(20));
    let mut req = AutotuneRequest::new(SloTarget {
        rate_per_s: rate,
        p99: slo,
    });
    req.max_workers = workers;
    req.requests = 256;
    let tuned = autotune(&model, &req).expect("search over a valid space");
    assert!(
        tuned.slo_met,
        "a 30%-of-capacity load must be feasible: {:?}",
        tuned.predicted
    );
    assert!(tuned.predicted.p99 <= slo);
    assert!(!tuned.trajectory.is_empty());

    // Build the recommended stack through the unified config API and
    // replay the exact arrival schedule the simulator scored. Cap the
    // replay around ~5 s of simulated wall time so debug builds stay fast.
    let engine = tuned
        .recommended
        .build_engine(Arc::clone(&sk))
        .expect("recommended config validates");
    let dispatcher =
        Dispatcher::from_config(&tuned.recommended, engine).expect("recommended config validates");
    let replay_requests = ((rate * 5.0) as usize).clamp(32, 150);
    let spec = LoadSpec {
        rate_per_s: rate,
        requests: replay_requests,
        seed: req.seed,
        deadline: Some(slo),
    };
    let measured = replay_open_loop(&dispatcher, &spec, &ct, &lut).expect("replay completes");

    // Every request is accounted for; at 30% load with deadlines at the
    // SLO the recommended config must serve all of them.
    assert_eq!(
        measured.completed + measured.expired + measured.rejected + measured.failed,
        replay_requests as u64,
        "conservation: {measured:?}"
    );
    assert_eq!(measured.failed, 0, "no backend errors: {measured:?}");
    assert_eq!(
        measured.rejected, 0,
        "nothing shed at 30% load: {measured:?}"
    );
    assert_eq!(
        measured.expired, 0,
        "nothing expired at 30% load: {measured:?}"
    );
    // The acceptance bar: the recommendation meets the requested SLO in
    // reality, and prediction and measurement agree within the
    // documented bound.
    assert!(
        measured.p99 <= slo,
        "measured p99 {:?} must meet the requested SLO {slo:?}",
        measured.p99
    );
    assert!(
        p99_agree(tuned.predicted.p99, measured.p99),
        "predicted {:?} and measured {:?} p99 must agree within the §15 bound",
        tuned.predicted.p99,
        measured.p99
    );
}

#[test]
fn recommended_config_survives_a_serialization_round_trip() {
    // The capacity-planning artifact (`autotune_config.json`) is the
    // recommended config's own JSON; it must reload into an identical,
    // valid config that builds a working dispatcher.
    let model = ServiceModel::new(Duration::from_millis(1));
    let tuned = autotune(
        &model,
        &AutotuneRequest::new(SloTarget {
            rate_per_s: 100.0,
            p99: Duration::from_millis(25),
        }),
    )
    .expect("synthetic search");
    let reloaded = ServingConfig::from_json(&tuned.recommended.to_json()).expect("own JSON parses");
    assert_eq!(reloaded, tuned.recommended);
    reloaded
        .validate()
        .expect("recommendations are always valid");
}
