//! Cross-crate integration tests through the umbrella API: the functional
//! cryptosystem, the accelerator model, and the applications working
//! together.

use morphling_repro::core::sched::{HwScheduler, SwScheduler, Workload};
use morphling_repro::core::sim::Simulator;
use morphling_repro::core::{opcount, ArchConfig, ReuseMode};
use morphling_repro::tfhe::{ClientKey, Lut, ParamSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The central thesis of the paper, verified end to end on our stack:
/// transform-domain reuse removes most domain transforms (analytical
/// model), which translates into higher simulated throughput (simulator),
/// while the underlying arithmetic it reorganizes stays exact (functional
/// layer).
#[test]
fn thesis_reuse_reduces_transforms_and_raises_throughput() {
    let params = ParamSet::C.params();
    // 1. Analytical: 83.3% fewer transforms.
    let row = opcount::Fig3Row::for_params(&params);
    assert!(row.input_output_reduction() > 0.83);
    // 2. Simulated: ≥4× throughput at equal resources.
    let tput = |reuse| {
        Simulator::new(
            ArchConfig::morphling_default()
                .with_reuse(reuse)
                .with_merge_split(false),
        )
        .bootstrap_batch(&params, 16)
        .throughput_bs_per_s()
    };
    assert!(tput(ReuseMode::InputOutputReuse) / tput(ReuseMode::NoReuse) >= 3.5);
    // 3. Functional: the transform-domain accumulation that output reuse
    // relies on is exact (spectra add before a single IFFT).
    use morphling_repro::math::{negacyclic, Polynomial, Torus32};
    use morphling_repro::transform::{NegacyclicFft, Spectrum};
    let n = 512;
    let fft = NegacyclicFft::new(n);
    let mut rng = StdRng::seed_from_u64(1);
    let mut acc_spec = Spectrum::zero(n);
    let mut acc_exact = Polynomial::<Torus32>::zero(n);
    for _ in 0..16 {
        use rand::Rng;
        let d = Polynomial::from_fn(n, |_| rng.gen_range(-32i64..32));
        let t = Polynomial::from_fn(n, |_| Torus32::from_raw(rng.gen()));
        acc_spec.mul_acc(&fft.forward_int(&d), &fft.forward_torus(&t));
        acc_exact += &negacyclic::mul_int_torus32(&d, &t);
    }
    assert_eq!(fft.inverse_torus(&acc_spec), acc_exact);
}

/// A scheduled application workload and the plain simulator agree on
/// steady-state throughput within 25% (the scheduler adds DMA edges and
/// wave quantization).
#[test]
fn scheduler_and_simulator_agree() {
    let cfg = ArchConfig::morphling_default();
    let params = ParamSet::I.params();
    let groups = 8u64;
    let count = groups * cfg.bootstrap_cores() as u64;
    let prog = SwScheduler::new(cfg.clone()).compile(&Workload::independent(count), &params);
    let makespan = HwScheduler::new(cfg.clone()).run_seconds(&prog, &params);
    let sched_tput = count as f64 / makespan;
    let sim_tput = Simulator::new(cfg)
        .bootstrap_batch(&params, 16)
        .throughput_bs_per_s();
    let ratio = sched_tput / sim_tput;
    assert!(
        (0.75..=1.05).contains(&ratio),
        "scheduler {sched_tput} vs simulator {sim_tput}"
    );
}

/// Full-stack private inference at a paper parameter set: an encrypted
/// decision stump at set I (real 80-bit-class bootstrapping), verified
/// against plaintext, with the accelerator projecting its batch latency.
/// (The deeper tree demo runs at the test set — see
/// `morphling-apps::functional` — because the depth-2 index combination
/// amplifies noise by √21, which set I's p=8 budget does not cover.)
#[test]
fn private_inference_at_set_i_with_accelerator_projection() {
    let mut rng = StdRng::seed_from_u64(2);
    let params = ParamSet::I.params().with_plaintext_modulus(8);
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    // Decision stump: d = (x ≥ 3); leaf = [7, 2][d] via a second PBS on
    // 2·d (noise amplification only ×2).
    let ge3 = Lut::from_fn(params.poly_size, 8, |x| u64::from(x >= 3));
    let leaf = Lut::from_fn(params.poly_size, 8, |idx| if idx >= 2 { 2 } else { 7 });
    for x in [0u64, 2, 3, 7] {
        let ct = ck.encrypt(x, &mut rng);
        let d = sk.programmable_bootstrap(&ct, &ge3);
        let out = sk.programmable_bootstrap(&d.scalar_mul(2), &leaf);
        let expect = if x >= 3 { 2 } else { 7 };
        assert_eq!(ck.decrypt(&out), expect, "x={x}");
    }
    // Projection: 2 dependent bootstraps.
    let sim = Simulator::new(ArchConfig::morphling_default());
    let t = 2.0 * sim.batch_time_seconds(&params, 1, 1);
    assert!(t < 0.5e-3, "stump inference projected at {t} s");
}

/// The umbrella crate exposes a consistent dependency stack: one
/// polynomial type flows from math through transform into tfhe.
#[test]
fn umbrella_reexports_compose() {
    use morphling_repro::math::{Polynomial, Torus32};
    use morphling_repro::transform::NegacyclicFft;
    let p = Polynomial::from_fn(64, |j| Torus32::from_raw(j as u32 * 1000));
    let fft = NegacyclicFft::new(64);
    let spec = fft.forward_torus(&p);
    assert_eq!(fft.inverse_torus(&spec), p);
    let lut = Lut::identity(64, 4);
    assert_eq!(lut.plaintext_modulus(), 4);
}

/// Noise budget: a chain of PBS → leveled ops → PBS at set I keeps
/// decrypting correctly (bootstrapping really resets noise at a paper
/// parameter set).
#[test]
fn set_i_noise_chain() {
    let mut rng = StdRng::seed_from_u64(3);
    let params = ParamSet::I.params();
    let ck = ClientKey::generate(params.clone(), &mut rng);
    let sk = ServerKey::new(&ck, &mut rng);
    let inc = Lut::from_fn(params.poly_size, 4, |m| (m + 1) % 4);
    let mut ct = ck.encrypt(0, &mut rng);
    for hop in 1..=6u64 {
        ct = sk.programmable_bootstrap(&ct, &inc);
        assert_eq!(ck.decrypt(&ct), hop % 4, "hop {hop}");
    }
}
